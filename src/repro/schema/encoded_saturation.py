"""Incremental, store-driven RDFS saturation over encoded integer rows.

:func:`repro.schema.saturation.saturate` computes ``G∞`` in one pass over a
decoded :class:`~repro.model.graph.RDFGraph`.  That is the right tool for a
one-shot batch job, but the serving layer maintains a *live* saturated
store: rebuilding ``G∞`` from scratch after every ``add_triples`` batch
costs ``O(|G∞|)`` decode + saturate + re-encode work per update, however
small the delta.  :class:`IncrementalSaturator` applies the same four
instance-level rules —

* rdfs7 — ``x p y`` and ``p ≺sp q``    entail ``x q y``;
* rdfs2 — ``x p y`` and ``p ←d c``     entail ``x τ c``;
* rdfs3 — ``x p y`` and ``p →r c``     entail ``y τ c``;
* rdfs9 — ``x τ c`` and ``c ≺sc d``    entail ``x τ d``;

— directly over the *encoded* rows of a :class:`~repro.store.base.TripleStore`,
mirroring the ingest API of
:class:`~repro.core.incremental.IncrementalWeakSummarizer`
(:meth:`ingest_rows` / :meth:`snapshot` / :meth:`state_dict` /
:meth:`load_state`) so :class:`~repro.service.catalog.CatalogEntry` can
maintain it exactly like the weak-summary maps.

Delta algebra
-------------
The schema relations are kept *closed* (the integer mirror of
:class:`~repro.schema.rdfs.RDFSchema`), so every instance row derives in
one step from the closed maps and derived rows never need re-processing:
a superproperty copy ``x q y`` of ``x p y`` can only entail rows the
closed maps of ``p`` already produced (closure is transitive and
domain/range are inherited downward).  Semi-naive maintenance therefore
reduces to three cases per freshly inserted row:

* **data row** ``(s, p, o)`` — insert it, then its superproperty copies
  and the (closed) domain / range typings of ``p``;
* **type row** ``(s, τ, c)`` — insert it, then the (closed) superclass
  typings of ``c``;
* **schema row** — re-close the (small) schema, insert the new closure
  rows, and re-derive *only* the base rows of properties / classes whose
  closed entries actually changed — a targeted, retroactive re-derivation
  that makes late-arriving schema triples entail from old data.

Every insertion into the saturated target store is deduplicated
(``skip_existing`` semantics), so each derived row is materialized exactly
once and the cost of a delta is proportional to its *derivations*, never
to ``|G∞|``.  The target shares the base store's dictionary: no term is
ever decoded or re-encoded on this path (``rdf:type`` is the single term
the saturator may have to mint, for graphs whose explicit triples never
used it).

Durable state
-------------
:meth:`state_dict` exposes pure-integer structures only (the same contract
as the weak summarizer): the direct and closed schema maps, the derived-row
log and two term ids.  The persistent catalog checkpoints them and a warm
start calls :meth:`load_state` + :meth:`rehydrate` — rebuilding the target
from the base rows plus the derived log with **zero** rule application.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.model.dictionary import EncodedTriple
from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.triple import TripleKind
from repro.schema.rdfs import _transitive_closure
from repro.store.base import TripleStore
from repro.store.memory import MemoryStore

__all__ = ["IncrementalSaturator"]

#: The four constraint relations, keyed by the names used in the state dict.
_SUBCLASS = "subclass"
_SUBPROPERTY = "subproperty"
_DOMAIN = "domain"
_RANGE = "range"

_RELATION_OF_TERM = {
    RDFS_SUBCLASSOF: _SUBCLASS,
    RDFS_SUBPROPERTYOF: _SUBPROPERTY,
    RDFS_DOMAIN: _DOMAIN,
    RDFS_RANGE: _RANGE,
}


class IncrementalSaturator:
    """Maintains the saturation ``G∞`` of a :class:`TripleStore` in a second store.

    Parameters
    ----------
    store:
        The base store holding the explicit triples.  Rows handed to
        :meth:`ingest_rows` must already be inserted there (the output of
        :meth:`TripleStore.insert_triples` with ``skip_existing=True`` —
        the same contract as the incremental weak summarizer), because a
        schema delta re-derives from the base store's tables.
    target:
        The store receiving ``G∞`` (a fresh :class:`MemoryStore` by
        default).  It *shares* the base store's dictionary, so its rows
        stay id-compatible with the base rows and evaluators over it
        compile queries identically.
    """

    def __init__(self, store: TripleStore, target: Optional[TripleStore] = None):
        self.store = store
        if target is None:
            target = MemoryStore()
            target.dictionary = store.dictionary
        self.target = target
        #: Direct (declared) constraint pairs, one ``id -> {id}`` map per
        #: relation, straight from the schema rows seen so far.
        self._direct: Dict[str, Dict[int, Set[int]]] = {
            _SUBCLASS: {},
            _SUBPROPERTY: {},
            _DOMAIN: {},
            _RANGE: {},
        }
        #: Closed relations (the integer mirror of
        #: :meth:`RDFSchema._ensure_closure`): transitive ≺sc / ≺sp,
        #: domain / range inherited from superproperties and propagated up
        #: the subclass hierarchy.
        self._super_classes: Dict[int, Set[int]] = {}
        self._super_properties: Dict[int, Set[int]] = {}
        self._domains: Dict[int, Set[int]] = {}
        self._ranges: Dict[int, Set[int]] = {}
        #: Constraint-property term ids, adopted from the schema rows
        #: (``relation name -> id``); a relation only ever produces closure
        #: rows after a direct row supplied its property id.
        self._schema_ids: Dict[str, int] = {}
        #: Derived cache of ``_schema_ids``' values for the per-derived-row
        #: table-routing probe (rebuilt on registration, not persisted).
        self._schema_id_set: frozenset = frozenset()
        #: ``rdf:type``'s id, adopted from type rows or minted on the first
        #: domain/range/subclass derivation of a graph without type triples.
        self._type_id: Optional[int] = None
        #: Log of every row this saturator added to the target that is not
        #: a base row: closure rows and rule derivations, as
        #: ``(kind_value, s, p, o)`` plain tuples (insertion order).  This
        #: plus the base store reconstructs the target without re-applying
        #: a single rule — the warm-restart path of the catalog.
        self._derived: List[Tuple[str, int, int, int]] = []

    # ------------------------------------------------------------------
    # schema bookkeeping
    # ------------------------------------------------------------------
    def _register_schema_row(self, row: Tuple[int, int, int]) -> bool:
        """Fold one schema row into the direct maps; ``True`` when new."""
        subject, predicate, obj = row[0], row[1], row[2]
        term = self.store.dictionary.decode(predicate)
        relation = _RELATION_OF_TERM.get(term)
        if relation is None:  # not one of the four constraints: inert
            return False
        self._schema_ids[relation] = predicate
        if relation == _SUBPROPERTY:
            # a special property (rdf:type, or one of the four constraint
            # properties) can itself appear as a superproperty — adopt its
            # id now so rdfs7 copies route to the right target table
            object_term = self.store.dictionary.decode(obj)
            if object_term == RDF_TYPE:
                self._type_id = obj
            else:
                object_relation = _RELATION_OF_TERM.get(object_term)
                if object_relation is not None:
                    self._schema_ids[object_relation] = obj
        self._schema_id_set = frozenset(self._schema_ids.values())
        targets = self._direct[relation].setdefault(subject, set())
        if obj in targets:
            return False
        targets.add(obj)
        return True

    def _kind_for_property(self, property_id: int) -> TripleKind:
        """The target table a row with this property id belongs to.

        Mirrors :func:`~repro.model.triple.classify_triple` at the id
        level, so a derived row whose (super)property is ``rdf:type`` or a
        constraint property lands where the evaluator's table routing will
        look for it.
        """
        if property_id == self._type_id:
            return TripleKind.TYPE
        if property_id in self._schema_id_set:
            return TripleKind.SCHEMA
        return TripleKind.DATA

    def _reclose(self) -> None:
        """Recompute the closed relations from the direct maps.

        The integer mirror of :meth:`RDFSchema._ensure_closure`; schemas
        are small (tens to hundreds of constraints), so a full re-close per
        schema delta is negligible next to one instance-rule application.
        """
        self._super_classes = _transitive_closure(self._direct[_SUBCLASS])
        self._super_properties = _transitive_closure(self._direct[_SUBPROPERTY])
        direct_domain = self._direct[_DOMAIN]
        direct_range = self._direct[_RANGE]
        properties = (
            set(direct_domain)
            | set(direct_range)
            | set(self._direct[_SUBPROPERTY])
            | set(self._super_properties)
        )
        domains: Dict[int, Set[int]] = {}
        ranges: Dict[int, Set[int]] = {}
        for prop in properties:
            related = {prop} | self._super_properties.get(prop, set())
            domain_classes: Set[int] = set()
            range_classes: Set[int] = set()
            for candidate in related:
                domain_classes |= direct_domain.get(candidate, set())
                range_classes |= direct_range.get(candidate, set())
            for cls in list(domain_classes):
                domain_classes |= self._super_classes.get(cls, set())
            for cls in list(range_classes):
                range_classes |= self._super_classes.get(cls, set())
            if domain_classes:
                domains[prop] = domain_classes
            if range_classes:
                ranges[prop] = range_classes
        self._domains = domains
        self._ranges = ranges

    def _insert_closure_rows(self, out: List[Tuple[TripleKind, Tuple[int, int, int]]]) -> None:
        """Insert every closed-schema row missing from the target."""
        rows: List[Tuple[TripleKind, Tuple[int, int, int]]] = []
        for relation, closed in (
            (_SUBCLASS, self._super_classes),
            (_SUBPROPERTY, self._super_properties),
            (_DOMAIN, self._domains),
            (_RANGE, self._ranges),
        ):
            property_id = self._schema_ids.get(relation)
            if property_id is None:
                continue
            for subject, objects in closed.items():
                for obj in objects:
                    rows.append((TripleKind.SCHEMA, (subject, property_id, obj)))
        self._record(self.target.insert_encoded_rows(rows), out)

    def _record(
        self,
        fresh: List[Tuple[TripleKind, EncodedTriple]],
        out: List[Tuple[TripleKind, EncodedTriple]],
    ) -> None:
        """Log freshly derived target rows (durable state + caller's delta)."""
        for kind, row in fresh:
            self._derived.append((kind.value, row[0], row[1], row[2]))
        out.extend(fresh)

    # ------------------------------------------------------------------
    # the instance-level rules (one-step, over the closed maps)
    # ------------------------------------------------------------------
    def _type_identifier(self) -> int:
        if self._type_id is None:
            self._type_id = self.store.dictionary.encode(RDF_TYPE)
        return self._type_id

    def _derive_data(
        self, subject: int, prop: int, obj: int, out: List[Tuple[TripleKind, Tuple[int, int, int]]]
    ) -> None:
        """rdfs7 superproperty copies plus rdfs2/3 domain and range typings."""
        rows: List[Tuple[TripleKind, Tuple[int, int, int]]] = []
        for super_property in self._super_properties.get(prop, ()):
            rows.append(
                (self._kind_for_property(super_property), (subject, super_property, obj))
            )
        domains = self._domains.get(prop)
        ranges = self._ranges.get(prop)
        if domains or ranges:
            type_id = self._type_identifier()
            for cls in domains or ():
                rows.append((TripleKind.TYPE, (subject, type_id, cls)))
            for cls in ranges or ():
                rows.append((TripleKind.TYPE, (obj, type_id, cls)))
        if rows:
            self._record(self.target.insert_encoded_rows(rows), out)

    def _derive_type(
        self, subject: int, cls: int, out: List[Tuple[TripleKind, Tuple[int, int, int]]]
    ) -> None:
        """rdfs9 superclass typings (the closed domains/ranges already
        include superclasses, so data-row typings never re-enter here)."""
        super_classes = self._super_classes.get(cls)
        if not super_classes:
            return
        type_id = self._type_identifier()
        rows = [
            (TripleKind.TYPE, (subject, type_id, super_class))
            for super_class in super_classes
        ]
        self._record(self.target.insert_encoded_rows(rows), out)

    # ------------------------------------------------------------------
    # schema deltas: re-close + targeted re-derivation
    # ------------------------------------------------------------------
    def _apply_schema_delta(
        self,
        schema_rows: List[EncodedTriple],
        out: List[Tuple[TripleKind, EncodedTriple]],
    ) -> None:
        """Fold new schema rows in and re-derive exactly what they affect.

        Only base rows are re-derived: every derived data row is a
        superproperty copy of a base row, and closure monotonicity makes
        the *base* predicate's closed entry change whenever any of its
        generalizations' does — so scanning the base tables for the
        affected properties / classes reaches every row a new constraint
        can retroactively entail from.
        """
        # explicit schema rows are base rows (recoverable from the base
        # store on rehydrate), so they reach *out* but not the derived log
        out.extend(
            self.target.insert_encoded_rows([(TripleKind.SCHEMA, row) for row in schema_rows])
        )
        # only genuinely new constraint pairs force a re-close
        changed = False
        for row in schema_rows:
            if self._register_schema_row(row):
                changed = True
        if not changed:
            return
        old_super_classes = self._super_classes
        old_super_properties = self._super_properties
        old_domains = self._domains
        old_ranges = self._ranges
        self._reclose()
        self._insert_closure_rows(out)

        def changed_keys(old: Dict[int, Set[int]], new: Dict[int, Set[int]]) -> Set[int]:
            return {
                key
                for key in old.keys() | new.keys()
                if old.get(key, set()) != new.get(key, set())
            }

        affected_properties = (
            changed_keys(old_super_properties, self._super_properties)
            | changed_keys(old_domains, self._domains)
            | changed_keys(old_ranges, self._ranges)
        )
        affected_classes = changed_keys(old_super_classes, self._super_classes)
        for prop in sorted(affected_properties):
            for row in self.store.select(TripleKind.DATA, None, prop, None):
                self._derive_data(row[0], row[1], row[2], out)
        for cls in sorted(affected_classes):
            for row in self.store.select(TripleKind.TYPE, None, None, cls):
                self._derive_type(row[0], cls, out)

    # ------------------------------------------------------------------
    # ingest API (mirrors IncrementalWeakSummarizer)
    # ------------------------------------------------------------------
    def ingest_row(self, kind: TripleKind, row: EncodedTriple) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Apply one freshly inserted base row; see :meth:`ingest_rows`."""
        return self.ingest_rows([(kind, row)])

    def ingest_rows(
        self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Apply one ``add_triples`` batch of ``(kind, row)`` pairs.

        Returns every row the batch added to the *target* — the base rows
        themselves plus their derivations — in insertion order, so callers
        maintaining derived state over ``G∞`` (the catalog's saturated
        statistics profile) can fold the delta in without a re-scan.

        Schema rows are applied first whatever the batch order (several
        re-close once), so data/type rows of the same batch derive under
        the already-extended closure; the re-derivation pass covers the
        rest, and deduplication makes the overlap free.
        """
        fresh: List[Tuple[TripleKind, Tuple[int, int, int]]] = []
        instance_rows: List[Tuple[TripleKind, Tuple[int, int, int]]] = []
        schema_rows: List[Tuple[int, int, int]] = []
        for kind, row in rows:
            if not isinstance(row, tuple):
                row = (row[0], row[1], row[2])
            if kind is TripleKind.SCHEMA:
                schema_rows.append(row)
            else:
                instance_rows.append((kind, row))
        if schema_rows:
            self._apply_schema_delta(schema_rows, fresh)
        # one batched insert for the whole delta.  A *data* row already
        # present is skipped with its derivations: it can only have been
        # materialized as an rdfs7 copy, whose one-step closure is a subset
        # of what produced it (see the module docstring).  A *type* row is
        # derived unconditionally — an rdfs7 copy over a type-valued
        # superproperty lands in the type table *without* an rdfs9 pass
        # (matching the batch semantics), so an explicit type row arriving
        # afterwards still owes its superclass typings.
        inserted = self.target.insert_encoded_rows(instance_rows)
        fresh.extend(inserted)
        fresh_data = {row for kind, row in inserted if kind is TripleKind.DATA}
        for kind, row in instance_rows:
            if kind is TripleKind.DATA:
                if row in fresh_data:
                    self._derive_data(row[0], row[1], row[2], fresh)
            else:
                self._type_id = row[1]
                self._derive_type(row[0], row[2], fresh)
        return fresh

    # ------------------------------------------------------------------
    def build(self) -> int:
        """Seed the target with the full saturation of the base store.

        One batched pass per table — the ``O(|G∞|)`` cost paid exactly
        once per graph lifetime (the catalog counts these as
        ``saturation_builds``); afterwards every update goes through
        :meth:`ingest_rows`.  Returns the number of target rows.
        """
        sink: List[Tuple[TripleKind, Tuple[int, int, int]]] = []
        schema_rows = [
            (row[0], row[1], row[2]) for row in self.store.scan_schema()
        ]
        if schema_rows:
            # close the schema up front (no targeted re-derivation pass —
            # the instance tables are ingested in full right below)
            for row in schema_rows:
                self._register_schema_row(row)
            self.target.insert_encoded_rows(
                [(TripleKind.SCHEMA, row) for row in schema_rows]
            )
            self._reclose()
            self._insert_closure_rows(sink)
        for kind in (TripleKind.DATA, TripleKind.TYPE):
            for subjects, predicates, objects in self.store.scan_columns(kind):
                self.ingest_rows(
                    [(kind, row) for row in zip(subjects, predicates, objects)]
                )
        return self.target.statistics().total_rows

    def snapshot(self, name: str = "") -> RDFGraph:
        """Decode the maintained ``G∞`` into a fresh :class:`RDFGraph`."""
        return self.target.to_graph(name=name or "saturated")

    # ------------------------------------------------------------------
    # durable state (the persistent-catalog warm-start path)
    # ------------------------------------------------------------------
    #: Everything beyond the two stores that determines the saturator.
    #: Pure-integer structures only (dicts / sets / plain tuples), the
    #: same serialization contract as the weak summarizer's maps.
    _STATE_KEYS = (
        "_direct",
        "_super_classes",
        "_super_properties",
        "_domains",
        "_ranges",
        "_schema_ids",
        "_type_id",
        "_derived",
    )

    def state_dict(self) -> Dict[str, object]:
        """The saturator's maps and derived-row log as one plain dict.

        The returned dict *references* the live structures (no copy):
        serialize before the saturator ingests anything further — the
        persistence layer runs under the owning entry's lock.
        """
        return {key: getattr(self, key) for key in self._STATE_KEYS}

    def load_state(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`state_dict` (ownership transfers to the saturator).

        The target is *not* rebuilt here — call :meth:`rehydrate` to fill
        it from the base store and the derived log.
        """
        missing = [key for key in self._STATE_KEYS if key not in state]
        if missing:
            raise ValueError(f"incomplete saturator state: missing {missing}")
        for key in self._STATE_KEYS:
            setattr(self, key, state[key])
        self._schema_id_set = frozenset(self._schema_ids.values())

    def rehydrate(self) -> int:
        """Rebuild the target from the base rows plus the derived log.

        Pure row insertion — not a single rule is applied, which is what
        keeps a warm-started catalog's ``saturation_builds`` counter at
        zero.  Returns the number of target rows.
        """
        insert = self.target.insert_encoded_rows
        for kind in (TripleKind.SCHEMA, TripleKind.DATA, TripleKind.TYPE):
            for subjects, predicates, objects in self.store.scan_columns(kind):
                insert([(kind, row) for row in zip(subjects, predicates, objects)])
        insert(
            [
                (TripleKind(kind_value), (subject, predicate, obj))
                for kind_value, subject, predicate, obj in self._derived
            ]
        )
        return self.target.statistics().total_rows

    def derived_count(self) -> int:
        """Rows of the target beyond the base rows (the derived log's length)."""
        return len(self._derived)

    def derived_since(self, mark: int) -> List[Tuple[str, int, int, int]]:
        """Derived-log rows appended after *mark* (a prior :meth:`derived_count`).

        This is the delta the persistent catalog appends to its durable
        derived-row table after each ingest batch — keeping incremental
        checkpoints proportional to the delta, not to ``|G∞|``.
        """
        return self._derived[mark:]
