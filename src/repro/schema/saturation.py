"""RDF graph saturation (entailment closure).

Section 2.1 of the paper: the semantics of an RDF graph ``G`` is its
*saturation* ``G∞`` — the fixed point obtained by repeatedly applying the
immediate entailment rules.  With the four RDFS constraints of Figure 1 the
instance-level rules are:

* rdfs7 — ``x p y`` and ``p ≺sp q``    entail ``x q y``;
* rdfs2 — ``x p y`` and ``p ←d c``     entail ``x τ c``;
* rdfs3 — ``x p y`` and ``p →r c``     entail ``y τ c``;
* rdfs9 — ``x τ c`` and ``c ≺sc d``    entail ``x τ d``;

plus the schema-level rules (transitivity of ≺sc / ≺sp, inheritance of
domain/range) that :class:`~repro.schema.rdfs.RDFSchema` already closes.

Because the schema relations are closed first, a single pass over the
instance triples reaches the fixpoint; :func:`saturate` is therefore linear
in ``|G∞|_e``.  The range rule is applied to literal property values as
well (producing generalized ``rdf:type`` triples with a literal subject),
following the paper's formal treatment — see :class:`repro.model.triple.Triple`.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Optional, Tuple

from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.triple import Triple
from repro.schema.rdfs import RDFSchema

__all__ = ["saturate", "saturate_cached", "is_saturated", "entails"]


def saturate(graph: RDFGraph, schema: Optional[RDFSchema] = None, name: str = "") -> RDFGraph:
    """Return the saturation ``G∞`` of *graph* as a new graph.

    Parameters
    ----------
    graph:
        The input RDF graph (its own schema component is used unless
        *schema* is given).
    schema:
        Optional externally supplied schema; useful to saturate a data-only
        graph against a separately stored ontology.
    name:
        Name of the returned graph (defaults to ``"<input>.saturated"``).

    Notes
    -----
    The range rule types every value of the property, including literal
    values — the resulting generalized ``rdf:type`` triples are what makes
    the summarize-then-saturate shortcuts of Propositions 5 and 8 exact.
    """
    if schema is None:
        schema = RDFSchema.from_graph(graph)

    result = RDFGraph(name=name or (f"{graph.name}.saturated" if graph.name else "saturated"))

    # 1. schema component: original plus entailed constraint triples.
    for triple in graph.schema_triples:
        result.add(triple)
    for triple in schema.closure_triples():
        result.add(triple)

    # 2. data triples: each triple is propagated to all superproperties and
    #    triggers the (closed) domain / range typings.
    for triple in graph.data_triples:
        result.add(triple)
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        for super_property in schema.superproperties(predicate):
            result.add(Triple(subject, super_property, obj))
        for domain_class in schema.domains(predicate):
            result.add(Triple(subject, RDF_TYPE, domain_class))
        for range_class in schema.ranges(predicate):
            result.add(Triple(obj, RDF_TYPE, range_class))

    # 3. type triples: propagate to all superclasses.
    for triple in graph.type_triples:
        result.add(triple)
        for super_class in schema.superclasses(triple.object):
            result.add(Triple(triple.subject, RDF_TYPE, super_class))

    return result


#: ``id(graph) -> (graph_version, saturated_graph)``.  Entries are evicted by
#: a ``weakref.finalize`` hook when the source graph is collected, so the
#: cache never resurrects a stale id; the version check catches mutation.
#: Guarded by ``_SATURATION_CACHE_LOCK``: the query service reaches this
#: cache from every :class:`~repro.server.executor.QueryExecutor` worker
#: thread (via ``pruning_graph(saturated=True)``), and an unguarded
#: dict-mutation + finalize registration pair can drop entries or register
#: duplicate finalizers under that concurrency.
#: Re-entrant: the eviction hook runs from ``weakref.finalize`` callbacks,
#: which fire at arbitrary allocation points — including inside a locked
#: block of :func:`saturate_cached` on the same thread; a plain lock would
#: self-deadlock there.
_SATURATION_CACHE: Dict[int, Tuple[int, RDFGraph]] = {}
_SATURATION_CACHE_LOCK = threading.RLock()


def saturate_cached(graph: RDFGraph, schema: Optional[RDFSchema] = None) -> RDFGraph:
    """Return ``G∞``, reusing a cached saturation while *graph* is unchanged.

    Workload loops (:func:`repro.queries.evaluation.has_answers` with
    ``saturated=True``, :func:`repro.core.properties.check_representativeness`,
    the query service's pruning checks) used to pay a full ``O(|G∞|)``
    re-saturation per query.  This helper caches the saturation per graph
    *identity* and invalidates it through :attr:`RDFGraph.version` whenever
    the graph has been mutated since.  The cached graph is shared — callers
    must treat it as read-only.

    Thread-safe: lookups and installs hold the cache lock (the saturation
    itself runs outside it, so concurrent misses on *different* graphs
    still saturate in parallel; concurrent misses on the same graph race
    benignly — one result wins the install, both are correct).

    A caller-supplied *schema* bypasses the cache (the cache key would need
    to include the schema's identity and mutable schemas are cheap to misuse;
    explicit-schema saturation stays uncached and exact).
    """
    if schema is not None:
        return saturate(graph, schema=schema)
    key = id(graph)
    version = graph.version
    with _SATURATION_CACHE_LOCK:
        entry = _SATURATION_CACHE.get(key)
        if entry is not None and entry[0] == version:
            return entry[1]
    result = saturate(graph)
    with _SATURATION_CACHE_LOCK:
        entry = _SATURATION_CACHE.get(key)
        if entry is None:
            # register the eviction hook exactly once per graph identity
            weakref.finalize(graph, _evict_saturation, key)
            _SATURATION_CACHE[key] = (version, result)
        elif entry[0] == version:
            return entry[1]  # a concurrent saturation of the same graph won
        elif entry[0] < version:
            # never let a saturation of an older version overwrite a newer
            # one installed while we were saturating
            _SATURATION_CACHE[key] = (version, result)
    return result


def _evict_saturation(key: int) -> None:
    with _SATURATION_CACHE_LOCK:
        _SATURATION_CACHE.pop(key, None)


def is_saturated(graph: RDFGraph, schema: Optional[RDFSchema] = None) -> bool:
    """``True`` when *graph* already equals its own saturation.

    Routed through :func:`saturate_cached` when no explicit *schema* is
    given: workload loops call this per query, and each call used to pay a
    full ``O(|G∞|)`` saturation pass even on an unchanged graph.  The
    explicit-schema path stays uncached and exact.  Note the cache keeps
    the saturation alive as long as *graph* is — callers probing a huge
    graph exactly once and wanting the memory back can pass its schema
    explicitly to stay off the cache.
    """
    return set(saturate_cached(graph, schema=schema)) == set(graph)


def entails(graph: RDFGraph, triple: Triple, schema: Optional[RDFSchema] = None) -> bool:
    """``True`` when ``G ⊨_RDF s p o``, i.e. *triple* belongs to ``G∞``.

    Cached like :func:`is_saturated`: repeated entailment probes against an
    unchanged graph saturate it once, not once per probe.
    """
    return triple in saturate_cached(graph, schema=schema)
