"""RDF Schema handling: constraint extraction and saturation (``G∞``)."""

from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import entails, is_saturated, saturate

__all__ = ["RDFSchema", "entails", "is_saturated", "saturate"]
