"""RDF Schema handling: constraint extraction and saturation (``G∞``)."""

from repro.schema.encoded_saturation import IncrementalSaturator
from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import entails, is_saturated, saturate

__all__ = ["IncrementalSaturator", "RDFSchema", "entails", "is_saturated", "saturate"]
