"""repro — Query-Oriented Summarization of RDF Graphs.

A from-scratch Python reproduction of the weak, strong, typed weak and typed
strong RDF quotient summaries of Čebirić, Goasdoué and Manolescu, together
with every substrate they rely on: an RDF data model, N-Triples/Turtle I/O,
an encoded triple store (in-memory and SQLite), RDFS saturation, BGP/RBGP
query evaluation, synthetic dataset generators, and a summary-guarded query
service (:mod:`repro.service`) that prunes provably-empty queries against
the summaries before touching the base graph.

Quickstart
----------
>>> from repro import summarize
>>> from repro.datasets import figure2_graph
>>> summary = summarize(figure2_graph(), "weak")
>>> len(summary.graph) < len(figure2_graph())
True
"""

from repro.core.builders import (
    strong_summary,
    summarize,
    type_summary,
    typed_strong_summary,
    typed_weak_summary,
    weak_summary,
)
from repro.core.encoded import EncodedSummaryEngine, encoded_summarize
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.model.terms import URI, BlankNode, Literal
from repro.model.triple import Triple
from repro.schema.saturation import saturate
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService

__version__ = "1.1.0"

__all__ = [
    "summarize",
    "GraphCatalog",
    "QueryService",
    "EncodedSummaryEngine",
    "encoded_summarize",
    "weak_summary",
    "strong_summary",
    "type_summary",
    "typed_weak_summary",
    "typed_strong_summary",
    "Summary",
    "RDFGraph",
    "Triple",
    "URI",
    "BlankNode",
    "Literal",
    "saturate",
    "__version__",
]
