"""GraphViz DOT export of RDF graphs and summaries.

The paper points readers to graphical representations of sample summaries;
this module produces equivalent pictures.  Class nodes are rendered as boxes
(the paper shows them in purple boxes), data/summary nodes as ellipses, and
``rdf:type`` edges are drawn dashed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Literal, Term, URI

__all__ = ["graph_to_dot", "summary_to_dot", "write_dot"]


def _node_id(term: Term, registry: Dict[Term, str]) -> str:
    existing = registry.get(term)
    if existing is not None:
        return existing
    identifier = f"n{len(registry)}"
    registry[term] = identifier
    return identifier


def _escape_label(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _label(term: Term, max_length: int = 40) -> str:
    if isinstance(term, URI):
        text = term.local_name
    elif isinstance(term, Literal):
        text = f'"{term.lexical}"'
    else:
        text = str(term)
    if len(text) > max_length:
        text = text[: max_length - 3] + "..."
    return _escape_label(text)


def graph_to_dot(
    graph: RDFGraph,
    name: str = "rdf_graph",
    include_schema: bool = True,
    class_color: str = "#b19cd9",
) -> str:
    """Render *graph* as a GraphViz DOT document string."""
    registry: Dict[Term, str] = {}
    class_nodes = graph.class_nodes()
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [fontsize=10];"]

    triples: Iterable = graph
    if not include_schema:
        triples = (t for t in graph if not t.is_schema())

    edges = []
    nodes_seen = set()
    for triple in sorted(triples):
        source = _node_id(triple.subject, registry)
        target = _node_id(triple.object, registry)
        nodes_seen.add(triple.subject)
        nodes_seen.add(triple.object)
        style = ' style=dashed color="#7851a9"' if triple.predicate == RDF_TYPE else ""
        edges.append(
            f'  {source} -> {target} [label="{_label(triple.predicate)}"{style}];'
        )

    for term in sorted(nodes_seen, key=lambda t: registry[t]):
        identifier = registry[term]
        if term in class_nodes:
            lines.append(
                f'  {identifier} [label="{_label(term)}" shape=box style=filled fillcolor="{class_color}"];'
            )
        elif isinstance(term, Literal):
            lines.append(f'  {identifier} [label="{_label(term)}" shape=plaintext];')
        else:
            lines.append(f'  {identifier} [label="{_label(term)}" shape=ellipse];')

    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines) + "\n"


def summary_to_dot(summary, name: str = "summary", show_extents: bool = False) -> str:
    """Render a :class:`~repro.core.summary.Summary` as DOT.

    When *show_extents* is true, each summary node label also lists how many
    input-graph nodes it represents.
    """
    graph = summary.graph
    if not show_extents:
        return graph_to_dot(graph, name=name)

    registry: Dict[Term, str] = {}
    class_nodes = graph.class_nodes()
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [fontsize=10];"]
    edges = []
    nodes_seen = set()
    for triple in sorted(graph):
        source = _node_id(triple.subject, registry)
        target = _node_id(triple.object, registry)
        nodes_seen.add(triple.subject)
        nodes_seen.add(triple.object)
        style = ' style=dashed color="#7851a9"' if triple.predicate == RDF_TYPE else ""
        edges.append(
            f'  {source} -> {target} [label="{_label(triple.predicate)}"{style}];'
        )
    for term in sorted(nodes_seen, key=lambda t: registry[t]):
        identifier = registry[term]
        extent_size = len(summary.extent(term)) if summary.represents(term) else 0
        label = _label(term)
        if extent_size:
            label = f"{label}\\n({extent_size} nodes)"
        if term in class_nodes:
            lines.append(
                f'  {identifier} [label="{label}" shape=box style=filled fillcolor="#b19cd9"];'
            )
        else:
            lines.append(f'  {identifier} [label="{label}" shape=ellipse];')
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(dot_text: str, path) -> None:
    """Write a DOT document to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot_text)
