"""Input/output: N-Triples, Turtle-subset and DOT serialization."""

from repro.io.dot import graph_to_dot, summary_to_dot, write_dot
from repro.io.ntriples import (
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.io.turtle_lite import load_turtle, parse_turtle, serialize_turtle

__all__ = [
    "graph_to_dot",
    "summary_to_dot",
    "write_dot",
    "dump_ntriples",
    "load_ntriples",
    "parse_ntriples",
    "parse_ntriples_line",
    "serialize_ntriples",
    "load_turtle",
    "parse_turtle",
    "serialize_turtle",
]
