"""N-Triples parsing and serialization.

The paper's loader (Section 6) supports files in the n-triples format; this
module provides the equivalent component in pure Python.  It covers the full
N-Triples 1.1 grammar subset used in practice:

* ``<uri>`` terms,
* ``_:label`` blank nodes,
* plain, language-tagged (``"x"@en``) and typed (``"x"^^<dt>``) literals with
  the standard string escapes,
* ``#`` comment lines and blank lines.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import ParseError
from repro.model.graph import RDFGraph
from repro.model.terms import BlankNode, Literal, Term, URI
from repro.model.triple import Triple

__all__ = [
    "parse_ntriples",
    "parse_ntriples_line",
    "load_ntriples",
    "serialize_ntriples",
    "dump_ntriples",
]

_IRIREF = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BLANK = r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)"
_STRING = r'"((?:[^"\\\n\r]|\\.)*)"'
_LANGTAG = r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)"

_SUBJECT_RE = re.compile(rf"(?:{_IRIREF}|{_BLANK})")
_PREDICATE_RE = re.compile(_IRIREF)
_OBJECT_RE = re.compile(
    rf"(?:{_IRIREF}|{_BLANK}|{_STRING}(?:\^\^{_IRIREF}|{_LANGTAG})?)"
)

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


def _code_point(
    value: str, start: int, digits: int, line_number: Optional[int], line: Optional[str]
) -> str:
    """Decode the ``digits``-digit hex payload of a ``\\u`` / ``\\U`` escape.

    *start* points at the first hex digit.  Truncated payloads (too few
    digits, including an end-of-string cut), non-hex digits, surrogate code
    points and values beyond U+10FFFF all raise :class:`ParseError` carrying
    the line context — previously a short slice was decoded silently (e.g.
    ``\\u41`` became ``"A"``) and bad digits surfaced as a bare
    ``ValueError``.
    """
    payload = value[start : start + digits]
    if len(payload) < digits or not all(char in _HEX_DIGITS for char in payload):
        marker = "\\u" if digits == 4 else "\\U"
        raise ParseError(
            f"truncated or invalid {marker} escape: expected {digits} hex digits, "
            f"got {payload!r}",
            line_number,
            line,
        )
    code = int(payload, 16)
    if 0xD800 <= code <= 0xDFFF:
        raise ParseError(
            f"surrogate code point U+{code:04X} is not allowed in literals",
            line_number,
            line,
        )
    if code > 0x10FFFF:
        raise ParseError(
            f"code point U+{code:X} is beyond U+10FFFF", line_number, line
        )
    return chr(code)


def _unescape(
    value: str, line_number: Optional[int] = None, line: Optional[str] = None
) -> str:
    """Decode N-Triples string escapes (``\\n``, ``\\uXXXX``, ``\\UXXXXXXXX``).

    Raises :class:`ParseError` (with the caller's line context, when given)
    on dangling, unknown, truncated or out-of-range escapes.
    """
    if "\\" not in value:
        return value
    output: List[str] = []
    index = 0
    length = len(value)
    while index < length:
        char = value[index]
        if char != "\\":
            output.append(char)
            index += 1
            continue
        if index + 1 >= length:
            raise ParseError("dangling escape at end of literal", line_number, line)
        escape = value[index + 1]
        if escape in _ESCAPES:
            output.append(_ESCAPES[escape])
            index += 2
        elif escape == "u":
            output.append(_code_point(value, index + 2, 4, line_number, line))
            index += 6
        elif escape == "U":
            output.append(_code_point(value, index + 2, 8, line_number, line))
            index += 10
        else:
            raise ParseError(f"unknown escape sequence: \\{escape}", line_number, line)
    return "".join(output)


def _skip_whitespace(line: str, position: int) -> int:
    while position < len(line) and line[position] in " \t":
        position += 1
    return position


def parse_ntriples_line(line: str, line_number: int = 0) -> Triple:
    """Parse a single N-Triples statement into a :class:`Triple`.

    Raises :class:`ParseError` on malformed input.
    """
    position = _skip_whitespace(line, 0)

    subject_match = _SUBJECT_RE.match(line, position)
    if not subject_match:
        raise ParseError("expected subject (<uri> or _:blank)", line_number, line)
    subject: Term
    if subject_match.group(1) is not None:
        subject = URI(subject_match.group(1))
    else:
        subject = BlankNode(subject_match.group(2))
    position = _skip_whitespace(line, subject_match.end())

    predicate_match = _PREDICATE_RE.match(line, position)
    if not predicate_match:
        raise ParseError("expected property <uri>", line_number, line)
    predicate = URI(predicate_match.group(1))
    position = _skip_whitespace(line, predicate_match.end())

    object_match = _OBJECT_RE.match(line, position)
    if not object_match:
        raise ParseError("expected object (<uri>, _:blank or literal)", line_number, line)
    obj: Term
    if object_match.group(1) is not None:
        obj = URI(object_match.group(1))
    elif object_match.group(2) is not None:
        obj = BlankNode(object_match.group(2))
    else:
        lexical = _unescape(object_match.group(3), line_number, line)
        datatype = object_match.group(4)
        language = object_match.group(5)
        if datatype is not None:
            obj = Literal(lexical, datatype=URI(datatype))
        elif language is not None:
            obj = Literal(lexical, language=language)
        else:
            obj = Literal(lexical)
    position = _skip_whitespace(line, object_match.end())

    if position >= len(line) or line[position] != ".":
        raise ParseError("expected terminating '.'", line_number, line)
    trailing = line[position + 1 :].strip()
    if trailing and not trailing.startswith("#"):
        raise ParseError(f"unexpected trailing content: {trailing!r}", line_number, line)

    return Triple(subject, predicate, obj)


def parse_ntriples(source: Union[str, TextIO], name: str = "") -> RDFGraph:
    """Parse N-Triples *source* (a string or a text stream) into a graph."""
    if isinstance(source, str):
        source = io.StringIO(source)
    graph = RDFGraph(name=name)
    for line_number, raw_line in enumerate(source, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        graph.add(parse_ntriples_line(line, line_number))
    return graph


def load_ntriples(path, name: str = "") -> RDFGraph:
    """Load an N-Triples file from *path* into a graph."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_ntriples(handle, name=name or str(path))


def serialize_ntriples(graph_or_triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples string with deterministic ordering."""
    lines = sorted(triple.n3() for triple in graph_or_triples)
    return "\n".join(lines) + ("\n" if lines else "")


def dump_ntriples(graph_or_triples: Iterable[Triple], path) -> int:
    """Write triples to *path* in N-Triples format; return the triple count."""
    text = serialize_ntriples(graph_or_triples)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


def iter_ntriples_lines(graph_or_triples: Iterable[Triple]) -> Iterator[str]:
    """Yield one N-Triples line per triple (unsorted, streaming)."""
    for triple in graph_or_triples:
        yield triple.n3()
