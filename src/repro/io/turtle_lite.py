"""A pragmatic Turtle subset parser and serializer.

Datasets and examples are friendlier to read in Turtle than in N-Triples.
This module supports the Turtle constructs actually needed by the library's
examples and tests:

* ``@prefix`` declarations and prefixed names (``ex:Book``),
* the ``a`` keyword for ``rdf:type``,
* ``;`` (same subject) and ``,`` (same subject and property) continuations,
* ``<uri>``, ``_:blank``, plain/typed/language literals, and bare integers
  and decimals (mapped to ``xsd:integer`` / ``xsd:decimal``),
* ``#`` comments.

It intentionally does not support collections, blank-node property lists or
multi-line literals — inputs using those should be converted to N-Triples.
"""

from __future__ import annotations

import io
import re
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.errors import ParseError
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF, RDF_TYPE, XSD
from repro.model.terms import BlankNode, Literal, Term, URI
from repro.model.triple import Triple

__all__ = ["parse_turtle", "load_turtle", "serialize_turtle"]

_PREFIX_RE = re.compile(r"@prefix\s+([A-Za-z][\w-]*)?:\s*<([^>]*)>\s*\.\s*$")
_BASE_RE = re.compile(r"@base\s+<([^>]*)>\s*\.\s*$")

_TOKEN_RE = re.compile(
    r"""
    (?P<uri><[^>]*>)
  | (?P<blank>_:[A-Za-z0-9][\w.-]*)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>|\^\^[A-Za-z][\w-]*:[\w.-]+|@[a-zA-Z-]+)?)
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<a_kw>\ba\b)
  | (?P<pname>[A-Za-z][\w-]*:[\w.-]*)
  | (?P<punct>[;,.\[\]])
    """,
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r'\\(["\\nrt])')
_ESCAPE_MAP = {'"': '"', "\\": "\\", "n": "\n", "r": "\r", "t": "\t"}


def _tokenize(line: str, line_number: int) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(line):
        char = line[position]
        if char in " \t":
            position += 1
            continue
        if char == "#":
            break
        match = _TOKEN_RE.match(line, position)
        if not match:
            raise ParseError(f"cannot tokenize near: {line[position:position+30]!r}", line_number, line)
        kind = match.lastgroup
        tokens.append((kind, match.group(0)))
        position = match.end()
    return tokens


class _TurtleParser:
    def __init__(self, name: str = ""):
        self.graph = RDFGraph(name=name)
        self.prefixes: Dict[str, str] = {"rdf": RDF.prefix, "xsd": XSD.prefix}
        self.base = ""
        self._subject: Optional[Term] = None
        self._predicate: Optional[URI] = None

    def parse(self, stream: TextIO) -> RDFGraph:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.rstrip("\n")
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            prefix_match = _PREFIX_RE.match(stripped)
            if prefix_match:
                self.prefixes[prefix_match.group(1) or ""] = prefix_match.group(2)
                continue
            base_match = _BASE_RE.match(stripped)
            if base_match:
                self.base = base_match.group(1)
                continue
            self._parse_statement_line(stripped, line_number)
        return self.graph

    # ------------------------------------------------------------------
    def _resolve_pname(self, pname: str, line_number: int) -> URI:
        prefix, _, local = pname.partition(":")
        if prefix not in self.prefixes:
            raise ParseError(f"undeclared prefix: {prefix!r}", line_number, pname)
        return URI(self.prefixes[prefix] + local)

    def _term_from_token(self, kind: str, text: str, line_number: int) -> Term:
        if kind == "uri":
            value = text[1:-1]
            if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value):
                value = self.base + value
            return URI(value)
        if kind == "blank":
            return BlankNode(text[2:])
        if kind == "pname":
            return self._resolve_pname(text, line_number)
        if kind == "a_kw":
            return RDF_TYPE
        if kind == "number":
            datatype = XSD.term("decimal") if "." in text else XSD.term("integer")
            return Literal(text, datatype=datatype)
        if kind == "literal":
            return self._literal_from_token(text, line_number)
        raise ParseError(f"unexpected token {text!r}", line_number, text)

    def _literal_from_token(self, text: str, line_number: int) -> Literal:
        closing = text.rindex('"')
        lexical = _ESCAPE_RE.sub(lambda m: _ESCAPE_MAP[m.group(1)], text[1:closing])
        suffix = text[closing + 1 :]
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=URI(suffix[3:-1]))
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._resolve_pname(suffix[2:], line_number))
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)

    def _parse_statement_line(self, line: str, line_number: int) -> None:
        tokens = _tokenize(line, line_number)
        index = 0
        while index < len(tokens):
            kind, text = tokens[index]
            if kind == "punct":
                if text == ".":
                    self._subject = None
                    self._predicate = None
                elif text == ";":
                    self._predicate = None
                elif text == ",":
                    pass
                else:
                    raise ParseError(f"unsupported punctuation {text!r}", line_number, line)
                index += 1
                continue
            term = self._term_from_token(kind, text, line_number)
            if self._subject is None:
                if isinstance(term, Literal):
                    raise ParseError("literal cannot be a subject", line_number, line)
                self._subject = term
            elif self._predicate is None:
                if not isinstance(term, URI):
                    raise ParseError("property must be a URI", line_number, line)
                self._predicate = term
            else:
                self.graph.add(Triple(self._subject, self._predicate, term))
            index += 1


def parse_turtle(source: Union[str, TextIO], name: str = "") -> RDFGraph:
    """Parse Turtle *source* (string or stream) into a graph."""
    if isinstance(source, str):
        source = io.StringIO(source)
    return _TurtleParser(name=name).parse(source)


def load_turtle(path, name: str = "") -> RDFGraph:
    """Load a Turtle file from *path* into a graph."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_turtle(handle, name=name or str(path))


def serialize_turtle(
    graph: Iterable[Triple], prefixes: Optional[Dict[str, str]] = None
) -> str:
    """Serialize triples to Turtle, grouping by subject and applying prefixes."""
    prefixes = dict(prefixes or {})
    prefix_items = sorted(prefixes.items(), key=lambda item: -len(item[1]))

    def shorten(term: Term) -> str:
        if isinstance(term, URI):
            if term == RDF_TYPE:
                return "a"
            for name, namespace in prefix_items:
                if term.value.startswith(namespace):
                    local = term.value[len(namespace) :]
                    if re.fullmatch(r"[\w.-]*", local):
                        return f"{name}:{local}"
            return term.n3()
        return term.n3()

    by_subject: Dict[str, List[Triple]] = {}
    subject_repr: Dict[str, Term] = {}
    for triple in graph:
        key = triple.subject.n3()
        by_subject.setdefault(key, []).append(triple)
        subject_repr[key] = triple.subject

    lines = [f"@prefix {name}: <{namespace}> ." for name, namespace in sorted(prefixes.items())]
    if lines:
        lines.append("")
    for key in sorted(by_subject):
        triples = sorted(by_subject[key])
        subject_text = shorten(subject_repr[key])
        parts = [
            f"    {shorten(t.predicate)} {shorten(t.object)}" for t in triples
        ]
        lines.append(f"{subject_text}\n" + " ;\n".join(parts) + " .")
    return "\n".join(lines) + ("\n" if lines else "")
