"""A BSBM-shaped synthetic RDF data generator.

The paper's experiments (Section 7, Figures 11-13) run the four summaries on
The Berlin SPARQL Benchmark (BSBM) dataset at several scales.  The original
BSBM data generator is a Java tool; this module reimplements the relevant
part of its data model in Python:

* an e-commerce universe of **product types** (a subclass tree),
  **products**, **producers**, **product features**, **vendors**, **offers**,
  **reviewers** and **reviews**;
* per-entity ``rdf:type`` triples and literal attributes;
* controlled heterogeneity — optional properties (e.g. extra ratings,
  second product label) appear only on a fraction of the entities, which is
  what gives the typed summaries their larger size in the paper's figures.

The generator is deterministic for a given ``(scale, seed)`` pair.  The
``scale`` parameter is the number of products; every other entity count is
derived from it using the same proportions as BSBM (one producer per ~35
products, one offer per product per ~2 vendors, ~5 reviews per product...).
Use :func:`graph_for_target_triples` to aim for an approximate triple count
instead.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE, RDFS_SUBCLASSOF, Namespace
from repro.model.terms import Literal, URI
from repro.model.triple import Triple

__all__ = ["BSBMGenerator", "generate_bsbm", "graph_for_target_triples", "BSBM"]

#: Namespace used for generated BSBM-like resources.
BSBM = Namespace("http://bsbm.example.org/")

_COUNTRIES = ["US", "GB", "DE", "FR", "JP", "CN", "RU", "AT", "ES", "KR"]
_WORDS = [
    "alpha", "bravo", "carbon", "delta", "ember", "falcon", "granite", "harbor",
    "indigo", "jasper", "krypton", "lumen", "meadow", "nimbus", "onyx", "prairie",
    "quartz", "raven", "sierra", "tundra", "umber", "vertex", "willow", "xenon",
    "yonder", "zephyr",
]


class BSBMGenerator:
    """Generates a BSBM-like RDF graph.

    Parameters
    ----------
    scale:
        Number of products; all other entity counts derive from it.
    seed:
        Seed of the internal pseudo-random generator.
    product_type_count:
        Size of the product-type subclass tree (minimum 3).
    """

    def __init__(self, scale: int = 100, seed: int = 0, product_type_count: int = 12):
        if scale <= 0:
            raise ValueError("scale must be a positive number of products")
        self.scale = scale
        self.seed = seed
        self.product_type_count = max(3, product_type_count)
        self._random = random.Random(seed)
        self.ns = BSBM

    # ------------------------------------------------------------------
    def _word(self) -> str:
        return self._random.choice(_WORDS)

    def _sentence(self, words: int = 4) -> str:
        return " ".join(self._word() for _ in range(words))

    # ------------------------------------------------------------------
    def _product_type_tree(self, graph: RDFGraph) -> List[URI]:
        """Create the product-type subclass tree; return the leaf types."""
        ns = self.ns
        root = ns.term("ProductType")
        types = [root]
        for index in range(1, self.product_type_count):
            node = ns.term(f"ProductType{index}")
            parent = types[(index - 1) // 2]
            graph.add(Triple(node, RDFS_SUBCLASSOF, parent))
            types.append(node)
        leaves = [t for t in types[1:]] or [root]
        return leaves

    def _producers(self, graph: RDFGraph, count: int) -> List[URI]:
        ns = self.ns
        producers = []
        for index in range(count):
            producer = ns.term(f"Producer{index}")
            graph.add(Triple(producer, RDF_TYPE, ns.Producer))
            graph.add(Triple(producer, ns.label, Literal(f"producer {self._word()} {index}")))
            graph.add(Triple(producer, ns.homepage, Literal(f"http://producer{index}.example.com/")))
            graph.add(Triple(producer, ns.country, Literal(self._random.choice(_COUNTRIES))))
            producers.append(producer)
        return producers

    def _features(self, graph: RDFGraph, count: int) -> List[URI]:
        ns = self.ns
        features = []
        for index in range(count):
            feature = ns.term(f"ProductFeature{index}")
            graph.add(Triple(feature, RDF_TYPE, ns.ProductFeature))
            graph.add(Triple(feature, ns.label, Literal(f"feature {self._word()} {index}")))
            features.append(feature)
        return features

    def _vendors(self, graph: RDFGraph, count: int) -> List[URI]:
        ns = self.ns
        vendors = []
        for index in range(count):
            vendor = ns.term(f"Vendor{index}")
            graph.add(Triple(vendor, RDF_TYPE, ns.Vendor))
            graph.add(Triple(vendor, ns.label, Literal(f"vendor {self._word()} {index}")))
            graph.add(Triple(vendor, ns.country, Literal(self._random.choice(_COUNTRIES))))
            vendors.append(vendor)
        return vendors

    def _reviewers(self, graph: RDFGraph, count: int) -> List[URI]:
        ns = self.ns
        reviewers = []
        for index in range(count):
            person = ns.term(f"Reviewer{index}")
            graph.add(Triple(person, RDF_TYPE, ns.Person))
            graph.add(Triple(person, ns.name, Literal(f"{self._word()} {self._word()}")))
            graph.add(Triple(person, ns.mbox, Literal(f"reviewer{index}@example.org")))
            if self._random.random() < 0.6:
                graph.add(Triple(person, ns.country, Literal(self._random.choice(_COUNTRIES))))
            reviewers.append(person)
        return reviewers

    def _products(
        self, graph: RDFGraph, leaf_types: List[URI], producers: List[URI], features: List[URI]
    ) -> List[URI]:
        ns = self.ns
        products = []
        for index in range(self.scale):
            product = ns.term(f"Product{index}")
            graph.add(Triple(product, RDF_TYPE, ns.Product))
            graph.add(Triple(product, RDF_TYPE, self._random.choice(leaf_types)))
            graph.add(Triple(product, ns.label, Literal(f"product {self._sentence(2)}")))
            graph.add(Triple(product, ns.producer, self._random.choice(producers)))
            graph.add(
                Triple(product, ns.propertyNumeric1, Literal(str(self._random.randint(1, 2000))))
            )
            if self._random.random() < 0.7:
                graph.add(
                    Triple(product, ns.propertyNumeric2, Literal(str(self._random.randint(1, 500))))
                )
            if self._random.random() < 0.4:
                graph.add(Triple(product, ns.propertyTextual1, Literal(self._sentence(6))))
            for _ in range(self._random.randint(1, 4)):
                graph.add(Triple(product, ns.productFeature, self._random.choice(features)))
            products.append(product)
        return products

    def _offers(
        self, graph: RDFGraph, products: List[URI], vendors: List[URI], per_product: int
    ) -> None:
        ns = self.ns
        offer_index = 0
        for product in products:
            for _ in range(self._random.randint(1, per_product)):
                offer = ns.term(f"Offer{offer_index}")
                offer_index += 1
                graph.add(Triple(offer, RDF_TYPE, ns.Offer))
                graph.add(Triple(offer, ns.offeredProduct, product))
                graph.add(Triple(offer, ns.vendor, self._random.choice(vendors)))
                graph.add(
                    Triple(offer, ns.price, Literal(f"{self._random.uniform(5, 5000):.2f}"))
                )
                graph.add(
                    Triple(offer, ns.deliveryDays, Literal(str(self._random.randint(1, 14))))
                )
                if self._random.random() < 0.5:
                    graph.add(
                        Triple(offer, ns.validTo, Literal(f"2016-{self._random.randint(1,12):02d}-01"))
                    )

    def _reviews(
        self, graph: RDFGraph, products: List[URI], reviewers: List[URI], per_product: int
    ) -> None:
        ns = self.ns
        review_index = 0
        for product in products:
            for _ in range(self._random.randint(0, per_product)):
                review = ns.term(f"Review{review_index}")
                review_index += 1
                graph.add(Triple(review, RDF_TYPE, ns.Review))
                graph.add(Triple(review, ns.reviewFor, product))
                graph.add(Triple(review, ns.reviewer, self._random.choice(reviewers)))
                graph.add(Triple(review, ns.reviewTitle, Literal(self._sentence(3))))
                graph.add(Triple(review, ns.reviewText, Literal(self._sentence(12))))
                graph.add(Triple(review, ns.rating1, Literal(str(self._random.randint(1, 10)))))
                if self._random.random() < 0.5:
                    graph.add(Triple(review, ns.rating2, Literal(str(self._random.randint(1, 10)))))
                if self._random.random() < 0.25:
                    graph.add(Triple(review, ns.rating3, Literal(str(self._random.randint(1, 10)))))

    # ------------------------------------------------------------------
    def generate(self) -> RDFGraph:
        """Generate the full BSBM-like graph."""
        graph = RDFGraph(name=f"bsbm_scale{self.scale}")
        leaf_types = self._product_type_tree(graph)
        producer_count = max(1, self.scale // 35)
        feature_count = max(5, self.scale // 10)
        vendor_count = max(1, self.scale // 50)
        reviewer_count = max(2, self.scale // 4)

        producers = self._producers(graph, producer_count)
        features = self._features(graph, feature_count)
        vendors = self._vendors(graph, vendor_count)
        reviewers = self._reviewers(graph, reviewer_count)
        products = self._products(graph, leaf_types, producers, features)
        self._offers(graph, products, vendors, per_product=3)
        self._reviews(graph, products, reviewers, per_product=4)
        return graph


def generate_bsbm(scale: int = 100, seed: int = 0) -> RDFGraph:
    """Generate a BSBM-like graph with *scale* products (deterministic)."""
    return BSBMGenerator(scale=scale, seed=seed).generate()


#: Empirically, one product yields roughly this many triples with the default
#: proportions; used by :func:`graph_for_target_triples`.
_TRIPLES_PER_PRODUCT = 26


def graph_for_target_triples(target_triples: int, seed: int = 0) -> RDFGraph:
    """Generate a BSBM-like graph of approximately *target_triples* triples."""
    scale = max(1, target_triples // _TRIPLES_PER_PRODUCT)
    return generate_bsbm(scale=scale, seed=seed)
