"""Dataset generators: the paper's figures, BSBM, LUBM, bibliography, random."""

from repro.datasets.bibliography import BIB, BibliographyGenerator, generate_bibliography
from repro.datasets.bsbm import BSBM, BSBMGenerator, generate_bsbm, graph_for_target_triples
from repro.datasets.lubm import LUBM, LUBMGenerator, generate_lubm
from repro.datasets.random_graph import RandomGraphConfig, generate_random_graph
from repro.datasets.sample import (
    FIG2,
    book_example_graph,
    figure2_graph,
    strong_completeness_graph,
    typed_weak_counterexample_graph,
    weak_completeness_graph,
)

__all__ = [
    "BIB",
    "BibliographyGenerator",
    "generate_bibliography",
    "BSBM",
    "BSBMGenerator",
    "generate_bsbm",
    "graph_for_target_triples",
    "LUBM",
    "LUBMGenerator",
    "generate_lubm",
    "RandomGraphConfig",
    "generate_random_graph",
    "FIG2",
    "book_example_graph",
    "figure2_graph",
    "strong_completeness_graph",
    "typed_weak_counterexample_graph",
    "weak_completeness_graph",
]
