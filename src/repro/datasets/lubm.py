"""A LUBM-shaped synthetic RDF data generator (university domain).

The paper reports experiments on "several synthetic and real-life RDF
datasets" beyond BSBM; the Lehigh University Benchmark (LUBM) is the other
canonical synthetic RDF workload.  Unlike the BSBM-like generator, this one
produces a **schema-rich** graph — subclass and subproperty hierarchies,
domain and range constraints — which makes it the workload of choice for the
saturation-shortcut experiments (Propositions 5 and 8, experiment E7 in
DESIGN.md).
"""

from __future__ import annotations

import random
from typing import List

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Namespace,
)
from repro.model.terms import Literal, URI
from repro.model.triple import Triple

__all__ = ["LUBMGenerator", "generate_lubm", "LUBM"]

#: Namespace used for generated LUBM-like resources.
LUBM = Namespace("http://lubm.example.org/")


class LUBMGenerator:
    """Generates a LUBM-like RDF graph.

    Parameters
    ----------
    universities:
        Number of universities; each has a fixed number of departments, and
        the per-department entity counts are drawn from narrow ranges as in
        the original benchmark.
    seed:
        Seed of the internal pseudo-random generator.
    """

    def __init__(self, universities: int = 1, departments_per_university: int = 3, seed: int = 0):
        if universities <= 0:
            raise ValueError("universities must be positive")
        self.universities = universities
        self.departments_per_university = max(1, departments_per_university)
        self._random = random.Random(seed)
        self.ns = LUBM

    # ------------------------------------------------------------------
    def _schema(self, graph: RDFGraph) -> None:
        ns = self.ns
        schema_triples = [
            # class hierarchy
            Triple(ns.FullProfessor, RDFS_SUBCLASSOF, ns.Professor),
            Triple(ns.AssociateProfessor, RDFS_SUBCLASSOF, ns.Professor),
            Triple(ns.AssistantProfessor, RDFS_SUBCLASSOF, ns.Professor),
            Triple(ns.Professor, RDFS_SUBCLASSOF, ns.Faculty),
            Triple(ns.Lecturer, RDFS_SUBCLASSOF, ns.Faculty),
            Triple(ns.Faculty, RDFS_SUBCLASSOF, ns.Person),
            Triple(ns.GraduateStudent, RDFS_SUBCLASSOF, ns.Student),
            Triple(ns.UndergraduateStudent, RDFS_SUBCLASSOF, ns.Student),
            Triple(ns.Student, RDFS_SUBCLASSOF, ns.Person),
            Triple(ns.GraduateCourse, RDFS_SUBCLASSOF, ns.Course),
            Triple(ns.Article, RDFS_SUBCLASSOF, ns.Publication),
            Triple(ns.ConferencePaper, RDFS_SUBCLASSOF, ns.Publication),
            # property hierarchy
            Triple(ns.headOf, RDFS_SUBPROPERTYOF, ns.worksFor),
            Triple(ns.worksFor, RDFS_SUBPROPERTYOF, ns.memberOf),
            Triple(ns.undergraduateDegreeFrom, RDFS_SUBPROPERTYOF, ns.degreeFrom),
            Triple(ns.mastersDegreeFrom, RDFS_SUBPROPERTYOF, ns.degreeFrom),
            Triple(ns.doctoralDegreeFrom, RDFS_SUBPROPERTYOF, ns.degreeFrom),
            # domains and ranges
            Triple(ns.worksFor, RDFS_DOMAIN, ns.Faculty),
            Triple(ns.worksFor, RDFS_RANGE, ns.Department),
            Triple(ns.memberOf, RDFS_RANGE, ns.Organization),
            Triple(ns.teacherOf, RDFS_DOMAIN, ns.Faculty),
            Triple(ns.teacherOf, RDFS_RANGE, ns.Course),
            Triple(ns.takesCourse, RDFS_DOMAIN, ns.Student),
            Triple(ns.takesCourse, RDFS_RANGE, ns.Course),
            Triple(ns.publicationAuthor, RDFS_DOMAIN, ns.Publication),
            Triple(ns.publicationAuthor, RDFS_RANGE, ns.Person),
            Triple(ns.advisor, RDFS_DOMAIN, ns.Student),
            Triple(ns.advisor, RDFS_RANGE, ns.Professor),
            Triple(ns.subOrganizationOf, RDFS_DOMAIN, ns.Organization),
            Triple(ns.subOrganizationOf, RDFS_RANGE, ns.Organization),
            Triple(ns.Department, RDFS_SUBCLASSOF, ns.Organization),
            Triple(ns.University, RDFS_SUBCLASSOF, ns.Organization),
        ]
        graph.add_all(schema_triples)

    # ------------------------------------------------------------------
    def _department(self, graph: RDFGraph, university: URI, dept_index: int) -> None:
        ns = self.ns
        rng = self._random
        department = ns.term(f"{university.local_name}_Department{dept_index}")
        graph.add(Triple(department, RDF_TYPE, ns.Department))
        graph.add(Triple(department, ns.subOrganizationOf, university))

        faculty_classes = [
            ns.FullProfessor,
            ns.AssociateProfessor,
            ns.AssistantProfessor,
            ns.Lecturer,
        ]
        faculty_members: List[URI] = []
        courses: List[URI] = []

        course_count = rng.randint(6, 12)
        for index in range(course_count):
            course = ns.term(f"{department.local_name}_Course{index}")
            course_class = ns.GraduateCourse if rng.random() < 0.4 else ns.Course
            graph.add(Triple(course, RDF_TYPE, course_class))
            graph.add(Triple(course, ns.name, Literal(f"course {index}")))
            courses.append(course)

        faculty_count = rng.randint(4, 8)
        for index in range(faculty_count):
            member = ns.term(f"{department.local_name}_Faculty{index}")
            graph.add(Triple(member, RDF_TYPE, rng.choice(faculty_classes)))
            graph.add(Triple(member, ns.name, Literal(f"faculty {index}")))
            graph.add(Triple(member, ns.worksFor, department))
            graph.add(Triple(member, ns.emailAddress, Literal(f"faculty{index}@{department.local_name}.edu")))
            graph.add(Triple(member, ns.doctoralDegreeFrom, university))
            for course in rng.sample(courses, k=min(len(courses), rng.randint(1, 3))):
                graph.add(Triple(member, ns.teacherOf, course))
            faculty_members.append(member)
        if faculty_members:
            graph.add(Triple(faculty_members[0], ns.headOf, department))

        publication_index = 0
        for member in faculty_members:
            for _ in range(rng.randint(0, 4)):
                publication = ns.term(f"{department.local_name}_Publication{publication_index}")
                publication_index += 1
                publication_class = ns.Article if rng.random() < 0.5 else ns.ConferencePaper
                graph.add(Triple(publication, RDF_TYPE, publication_class))
                graph.add(Triple(publication, ns.publicationAuthor, member))
                graph.add(Triple(publication, ns.name, Literal(f"publication {publication_index}")))

        student_count = rng.randint(15, 30)
        for index in range(student_count):
            student = ns.term(f"{department.local_name}_Student{index}")
            student_class = ns.GraduateStudent if rng.random() < 0.3 else ns.UndergraduateStudent
            graph.add(Triple(student, RDF_TYPE, student_class))
            graph.add(Triple(student, ns.name, Literal(f"student {index}")))
            graph.add(Triple(student, ns.memberOf, department))
            for course in rng.sample(courses, k=min(len(courses), rng.randint(1, 4))):
                graph.add(Triple(student, ns.takesCourse, course))
            if student_class == ns.GraduateStudent and faculty_members:
                graph.add(Triple(student, ns.advisor, rng.choice(faculty_members)))
                if rng.random() < 0.5:
                    graph.add(Triple(student, ns.undergraduateDegreeFrom, university))

    # ------------------------------------------------------------------
    def generate(self) -> RDFGraph:
        """Generate the LUBM-like graph (schema plus instance data)."""
        graph = RDFGraph(name=f"lubm_u{self.universities}")
        self._schema(graph)
        for uni_index in range(self.universities):
            university = self.ns.term(f"University{uni_index}")
            graph.add(Triple(university, RDF_TYPE, self.ns.University))
            graph.add(Triple(university, self.ns.name, Literal(f"University {uni_index}")))
            for dept_index in range(self.departments_per_university):
                self._department(graph, university, dept_index)
        return graph


def generate_lubm(universities: int = 1, departments_per_university: int = 3, seed: int = 0) -> RDFGraph:
    """Generate a LUBM-like graph (deterministic for fixed parameters)."""
    return LUBMGenerator(universities, departments_per_university, seed=seed).generate()
