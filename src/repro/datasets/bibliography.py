"""A bibliographic RDF data generator (the paper's motivating domain).

The running example of the paper describes books, journals, authors,
editors, reviews and comments; this generator scales that universe up.  It
purposely produces a *partially typed* graph: a configurable fraction of the
publications carry no ``rdf:type`` triple at all, which is exactly the kind
of heterogeneity the weak and strong summaries are designed to tolerate
(Section 2.2, "Tolerance to heterogeneity").
"""

from __future__ import annotations

import random
from typing import List

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Namespace,
)
from repro.model.terms import Literal, URI
from repro.model.triple import Triple

__all__ = ["BibliographyGenerator", "generate_bibliography", "BIB"]

#: Namespace used for generated bibliographic resources.
BIB = Namespace("http://bib.example.org/")

_TITLES = [
    "Le Port des Brumes", "Graphs at Dawn", "Summaries of Everything", "The Quotient",
    "Semantic Tides", "Notes on Saturation", "A Clique Apart", "Under the Schema",
]
_NAMES = [
    "G. Simenon", "A. Turing", "E. Codd", "B. Liskov", "G. Hopper", "J. Gray",
    "L. Lamport", "R. Milner", "S. Abiteboul", "M. Stonebraker",
]


class BibliographyGenerator:
    """Generates a bibliographic RDF graph.

    Parameters
    ----------
    publications:
        Number of publications (books, journals, specifications).
    untyped_fraction:
        Fraction of publications generated *without* any ``rdf:type`` triple.
    seed:
        Seed for the internal pseudo-random generator.
    """

    def __init__(self, publications: int = 100, untyped_fraction: float = 0.3, seed: int = 0):
        if publications <= 0:
            raise ValueError("publications must be positive")
        if not 0.0 <= untyped_fraction <= 1.0:
            raise ValueError("untyped_fraction must be within [0, 1]")
        self.publications = publications
        self.untyped_fraction = untyped_fraction
        self._random = random.Random(seed)
        self.ns = BIB

    def _schema(self, graph: RDFGraph) -> None:
        ns = self.ns
        graph.add_all(
            [
                Triple(ns.Book, RDFS_SUBCLASSOF, ns.Publication),
                Triple(ns.Journal, RDFS_SUBCLASSOF, ns.Publication),
                Triple(ns.Specification, RDFS_SUBCLASSOF, ns.Publication),
                Triple(ns.writtenBy, RDFS_SUBPROPERTYOF, ns.hasAuthor),
                Triple(ns.editedBy, RDFS_SUBPROPERTYOF, ns.hasContributor),
                Triple(ns.hasAuthor, RDFS_SUBPROPERTYOF, ns.hasContributor),
                Triple(ns.writtenBy, RDFS_DOMAIN, ns.Publication),
                Triple(ns.writtenBy, RDFS_RANGE, ns.Person),
                Triple(ns.editedBy, RDFS_RANGE, ns.Person),
                Triple(ns.reviewed, RDFS_DOMAIN, ns.Person),
                Triple(ns.reviewed, RDFS_RANGE, ns.Publication),
            ]
        )

    def generate(self) -> RDFGraph:
        """Generate the bibliography graph."""
        ns = self.ns
        rng = self._random
        graph = RDFGraph(name=f"bibliography_{self.publications}")
        self._schema(graph)

        person_count = max(3, self.publications // 3)
        people: List[URI] = []
        for index in range(person_count):
            person = ns.term(f"person{index}")
            graph.add(Triple(person, ns.hasName, Literal(rng.choice(_NAMES))))
            if rng.random() < 0.5:
                graph.add(Triple(person, RDF_TYPE, ns.Person))
            people.append(person)

        classes = [ns.Book, ns.Journal, ns.Specification]
        for index in range(self.publications):
            publication = ns.term(f"doi{index}")
            if rng.random() >= self.untyped_fraction:
                graph.add(Triple(publication, RDF_TYPE, rng.choice(classes)))
            graph.add(Triple(publication, ns.hasTitle, Literal(rng.choice(_TITLES))))
            graph.add(Triple(publication, ns.writtenBy, rng.choice(people)))
            graph.add(Triple(publication, ns.publishedIn, Literal(str(rng.randint(1930, 2016)))))
            if rng.random() < 0.5:
                graph.add(Triple(publication, ns.editedBy, rng.choice(people)))
            if rng.random() < 0.3:
                graph.add(Triple(publication, ns.comment, Literal("a comment")))
            if rng.random() < 0.4:
                graph.add(Triple(rng.choice(people), ns.reviewed, publication))
        return graph


def generate_bibliography(
    publications: int = 100, untyped_fraction: float = 0.3, seed: int = 0
) -> RDFGraph:
    """Generate a bibliographic graph (deterministic for fixed parameters)."""
    return BibliographyGenerator(publications, untyped_fraction, seed=seed).generate()
