"""The paper's running examples, as ready-made graphs.

* :func:`figure2_graph` — the sample RDF graph of Figure 2, whose source and
  target cliques are listed in Table 1 and whose four summaries are drawn in
  Figures 4, 6, 7 and 9;
* :func:`book_example_graph` — the introductory book/author example of
  Section 2.1, including its RDFS constraints (used to illustrate implicit
  triples and saturation);
* :func:`weak_completeness_graph` — a graph with ``≺sp`` constraints in the
  spirit of Figure 5, exercising Proposition 5;
* :func:`strong_completeness_graph` — the graph of Figure 10, exercising
  Proposition 8;
* :func:`typed_weak_counterexample_graph` — the graph of Figure 8, a
  counter-example to completeness of the typed weak summary (Prop. 7).
"""

from __future__ import annotations

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    EX,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Namespace,
)
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import Triple

__all__ = [
    "figure2_graph",
    "book_example_graph",
    "weak_completeness_graph",
    "strong_completeness_graph",
    "typed_weak_counterexample_graph",
    "FIG2",
]

#: Namespace of the Figure 2 resources and properties.
FIG2 = Namespace("http://example.org/fig2/")


def figure2_graph() -> RDFGraph:
    """The sample RDF graph of Figure 2.

    Data properties: ``author`` (a), ``title`` (t), ``editor`` (e),
    ``comment`` (c), ``reviewed`` (r), ``published`` (p).  Its cliques are
    exactly those of Table 1:

    * source cliques ``SC1 = {a, t, e, c}``, ``SC2 = {r}``, ``SC3 = {p}``;
    * target cliques ``TC1 = {a}``, ``TC2 = {t}``, ``TC3 = {e}``,
      ``TC4 = {c}``, ``TC5 = {r, p}``.
    """
    ns = FIG2
    graph = RDFGraph(name="figure2")
    author, title, editor = ns.author, ns.title, ns.editor
    comment, reviewed, published = ns.comment, ns.reviewed, ns.published
    r1, r2, r3, r4, r5, r6 = ns.r1, ns.r2, ns.r3, ns.r4, ns.r5, ns.r6
    a1, a2 = ns.a1, ns.a2
    t1, t2, t3, t4 = ns.t1, ns.t2, ns.t3, ns.t4
    e1, e2 = ns.e1, ns.e2
    c1 = ns.c1

    triples = [
        # r1, r2, r3: the typed publications of the upper row
        Triple(r1, author, a1),
        Triple(r1, title, t1),
        Triple(r2, title, t2),
        Triple(r2, editor, e1),
        Triple(r3, editor, e2),
        Triple(r3, comment, c1),
        # r4, r5: the untyped publications of the lower row
        Triple(r4, author, a2),
        Triple(r4, title, t3),
        Triple(r5, title, t4),
        Triple(r5, editor, e2),
        # r4 is the value of reviewed (from a1) and published (from e1)
        Triple(a1, reviewed, r4),
        Triple(e1, published, r4),
        # types
        Triple(r1, RDF_TYPE, ns.Book),
        Triple(r2, RDF_TYPE, ns.Book),
        Triple(r3, RDF_TYPE, ns.Journal),
        Triple(r6, RDF_TYPE, ns.Spec),
    ]
    graph.add_all(triples)
    return graph


def book_example_graph(with_schema: bool = True) -> RDFGraph:
    """The introductory example of Section 2.1 (book ``doi1`` and its author).

    With ``with_schema=True`` the four RDFS constraints of the running text
    are included, so that saturation yields the implicit triples
    ``doi1 rdf:type Publication``, ``doi1 hasAuthor _:b1`` and
    ``_:b1 rdf:type Person``.
    """
    ns = EX
    graph = RDFGraph(name="book_example")
    doi1 = ns.doi1
    b1 = BlankNode("b1")
    graph.add_all(
        [
            Triple(doi1, RDF_TYPE, ns.Book),
            Triple(doi1, ns.writtenBy, b1),
            Triple(doi1, ns.hasTitle, Literal("Le Port des Brumes")),
            Triple(b1, ns.hasName, Literal("G. Simenon")),
            Triple(doi1, ns.publishedIn, Literal("1932")),
        ]
    )
    if with_schema:
        graph.add_all(
            [
                Triple(ns.Book, RDFS_SUBCLASSOF, ns.Publication),
                Triple(ns.writtenBy, RDFS_SUBPROPERTYOF, ns.hasAuthor),
                Triple(ns.writtenBy, RDFS_DOMAIN, ns.Book),
                Triple(ns.writtenBy, RDFS_RANGE, ns.Person),
            ]
        )
    return graph


def weak_completeness_graph() -> RDFGraph:
    """A graph with ``≺sp`` constraints illustrating Proposition 5 (Figure 5).

    Two sub-properties ``b1`` and ``b2`` of a common property ``b`` are used
    by otherwise unrelated resources; saturation makes their source cliques
    merge, and the weak shortcut ``W((W_G)∞)`` must reflect that exactly as
    ``W(G∞)`` does.
    """
    ns = Namespace("http://example.org/fig5/")
    graph = RDFGraph(name="figure5")
    graph.add_all(
        [
            Triple(ns.x, ns.a1, ns.r1),
            Triple(ns.r1, ns.b1, ns.y1),
            Triple(ns.r2, ns.b2, ns.y2),
            Triple(ns.r2, ns.c, ns.z),
            Triple(ns.b1, RDFS_SUBPROPERTYOF, ns.b),
            Triple(ns.b2, RDFS_SUBPROPERTYOF, ns.b),
        ]
    )
    return graph


def strong_completeness_graph() -> RDFGraph:
    """The graph of Figure 10, illustrating Proposition 8.

    ``a1`` and ``a2`` are sub-properties of ``a``; before saturation the
    strong summary keeps ``N({b},{a1})``, ``N({c},{a1})`` and ``N({},{a2})``
    apart, and after saturation all three source cliques fuse into
    ``{a1, a2, a}``.
    """
    ns = Namespace("http://example.org/fig10/")
    graph = RDFGraph(name="figure10")
    graph.add_all(
        [
            Triple(ns.x1, ns.b, ns.r1),
            Triple(ns.x2, ns.c, ns.r2),
            Triple(ns.r1, ns.a1, ns.z1),
            Triple(ns.r2, ns.a1, ns.z2),
            Triple(ns.r3, ns.a2, ns.z3),
            Triple(ns.a1, RDFS_SUBPROPERTYOF, ns.a),
            Triple(ns.a2, RDFS_SUBPROPERTYOF, ns.a),
        ]
    )
    return graph


def typed_weak_counterexample_graph() -> RDFGraph:
    """The graph of Figure 8: a counter-example to typed-weak completeness.

    The domain constraint ``a ←d c`` turns the untyped resource ``r1`` into
    a typed one in ``G∞``; the typed weak summary of ``G∞`` therefore
    separates ``r1`` from ``r2``, while the shortcut computation (summarize,
    saturate, summarize) does not — Proposition 7.
    """
    ns = Namespace("http://example.org/fig8/")
    graph = RDFGraph(name="figure8")
    graph.add_all(
        [
            Triple(ns.r1, ns.a, ns.y1),
            Triple(ns.r1, ns.b, ns.y2),
            Triple(ns.r2, ns.b, ns.x),
            Triple(ns.a, RDFS_DOMAIN, ns.c),
        ]
    )
    return graph
