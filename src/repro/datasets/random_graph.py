"""Random heterogeneous RDF graph generator.

Property-based tests and robustness experiments need graphs with no
particular regularity: arbitrary property co-occurrence, resources with zero
or several types, optional RDFS constraints, literals mixed with URIs.  This
generator produces such graphs from a compact parameter set, deterministically
for a given seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Namespace,
)
from repro.model.terms import Literal, URI
from repro.model.triple import Triple

__all__ = ["RandomGraphConfig", "generate_random_graph"]

RAND = Namespace("http://random.example.org/")


class RandomGraphConfig:
    """Parameters of the random graph generator.

    Attributes
    ----------
    resources / properties / classes:
        Pool sizes for subject/object URIs, data properties and classes.
    data_triples:
        Number of data triples to draw.
    typed_fraction:
        Probability that a resource receives one or two ``rdf:type`` triples.
    literal_fraction:
        Probability that a data triple's object is a literal.
    schema_constraints:
        Number of RDFS constraint triples to draw (0 for a schema-less graph).
    """

    def __init__(
        self,
        resources: int = 30,
        properties: int = 8,
        classes: int = 5,
        data_triples: int = 60,
        typed_fraction: float = 0.4,
        literal_fraction: float = 0.25,
        schema_constraints: int = 4,
    ):
        self.resources = max(1, resources)
        self.properties = max(1, properties)
        self.classes = max(1, classes)
        self.data_triples = max(0, data_triples)
        self.typed_fraction = min(max(typed_fraction, 0.0), 1.0)
        self.literal_fraction = min(max(literal_fraction, 0.0), 1.0)
        self.schema_constraints = max(0, schema_constraints)


def generate_random_graph(
    config: Optional[RandomGraphConfig] = None, seed: int = 0
) -> RDFGraph:
    """Generate a random heterogeneous RDF graph."""
    config = config or RandomGraphConfig()
    rng = random.Random(seed)
    ns = RAND
    graph = RDFGraph(name=f"random_{seed}")

    resources: List[URI] = [ns.term(f"r{index}") for index in range(config.resources)]
    properties: List[URI] = [ns.term(f"p{index}") for index in range(config.properties)]
    classes: List[URI] = [ns.term(f"C{index}") for index in range(config.classes)]

    # schema constraints (optional)
    for _ in range(config.schema_constraints):
        choice = rng.random()
        if choice < 0.3 and len(classes) >= 2:
            child, parent = rng.sample(classes, 2)
            graph.add(Triple(child, RDFS_SUBCLASSOF, parent))
        elif choice < 0.6 and len(properties) >= 2:
            child, parent = rng.sample(properties, 2)
            graph.add(Triple(child, RDFS_SUBPROPERTYOF, parent))
        elif choice < 0.8:
            graph.add(Triple(rng.choice(properties), RDFS_DOMAIN, rng.choice(classes)))
        else:
            graph.add(Triple(rng.choice(properties), RDFS_RANGE, rng.choice(classes)))

    # data triples
    for index in range(config.data_triples):
        subject = rng.choice(resources)
        predicate = rng.choice(properties)
        if rng.random() < config.literal_fraction:
            obj = Literal(f"value {index}")
        else:
            obj = rng.choice(resources)
        graph.add(Triple(subject, predicate, obj))

    # type triples
    for resource in resources:
        if rng.random() < config.typed_fraction:
            graph.add(Triple(resource, RDF_TYPE, rng.choice(classes)))
            if rng.random() < 0.3:
                graph.add(Triple(resource, RDF_TYPE, rng.choice(classes)))

    return graph
