"""Shared fixtures: the paper's example graphs and small synthetic datasets."""

from __future__ import annotations

import pytest

from repro.datasets.bibliography import generate_bibliography
from repro.datasets.bsbm import generate_bsbm
from repro.datasets.lubm import generate_lubm
from repro.datasets.random_graph import RandomGraphConfig, generate_random_graph
from repro.datasets.sample import (
    book_example_graph,
    figure2_graph,
    strong_completeness_graph,
    typed_weak_counterexample_graph,
    weak_completeness_graph,
)


@pytest.fixture
def fig2():
    """The sample graph of Figure 2 (Table 1 cliques)."""
    return figure2_graph()


@pytest.fixture
def book_graph():
    """The introductory book example with its RDFS constraints."""
    return book_example_graph()


@pytest.fixture
def fig5_graph():
    return weak_completeness_graph()


@pytest.fixture
def fig10_graph():
    return strong_completeness_graph()


@pytest.fixture
def fig8_graph():
    return typed_weak_counterexample_graph()


@pytest.fixture(scope="session")
def bsbm_small():
    """A small BSBM-like graph shared across tests (read-only)."""
    return generate_bsbm(scale=40, seed=7)


@pytest.fixture(scope="session")
def lubm_small():
    """A small LUBM-like graph shared across tests (read-only)."""
    return generate_lubm(universities=1, departments_per_university=2, seed=7)


@pytest.fixture(scope="session")
def bibliography_small():
    """A small bibliography graph shared across tests (read-only)."""
    return generate_bibliography(publications=60, untyped_fraction=0.3, seed=7)


@pytest.fixture
def random_graph():
    """A deterministic random heterogeneous graph."""
    return generate_random_graph(RandomGraphConfig(), seed=11)
