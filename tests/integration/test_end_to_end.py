"""Integration tests across modules: file → store → summary → queries → export."""

from repro.core.builders import summarize, weak_summary
from repro.core.incremental import incremental_weak_summary
from repro.core.isomorphism import graphs_isomorphic
from repro.core.properties import check_fixpoint, check_representativeness
from repro.core.shortcuts import completeness_holds
from repro.io.dot import summary_to_dot
from repro.io.ntriples import dump_ntriples, load_ntriples, serialize_ntriples, parse_ntriples
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.queries.evaluation import evaluate, has_answers
from repro.schema.saturation import saturate
from repro.store.sqlite import SQLiteStore


class TestFileToSummaryPipeline:
    def test_roundtrip_through_files(self, tmp_path, bsbm_small):
        source = tmp_path / "bsbm.nt"
        dump_ntriples(bsbm_small, source)
        loaded = load_ntriples(source)
        assert set(loaded) == set(bsbm_small)

        summary = weak_summary(loaded)
        summary_path = tmp_path / "summary.nt"
        dump_ntriples(summary.graph, summary_path)
        reloaded = load_ntriples(summary_path)
        assert graphs_isomorphic(reloaded, summary.graph)

    def test_summary_serialization_is_stable(self, fig2):
        first = serialize_ntriples(weak_summary(fig2).graph)
        second = serialize_ntriples(weak_summary(fig2).graph)
        assert first == second

    def test_store_pipeline_matches_in_memory_pipeline(self, tmp_path, bibliography_small):
        database = tmp_path / "bib.db"
        with SQLiteStore(path=str(database)) as store:
            store.load_graph(bibliography_small)
            store.persist_dictionary()
            incremental = incremental_weak_summary(store)
        declarative = weak_summary(bibliography_small)
        assert graphs_isomorphic(incremental.graph, declarative.graph)


class TestQueryPipeline:
    def test_summary_answers_parsed_queries_that_graph_answers(self, bibliography_small):
        summary = summarize(bibliography_small, "typed_weak")
        query = parse_query(
            "PREFIX b: <http://bib.example.org/> "
            "SELECT ?x ?y WHERE { ?x b:writtenBy ?y . ?x a b:Book }"
        )
        if has_answers(saturate(bibliography_small), query):
            assert has_answers(saturate(summary.graph), query)

    def test_generated_workload_end_to_end(self, bsbm_small):
        queries = generate_rbgp_workload(saturate(bsbm_small), count=8, size=2, seed=13)
        for kind in ("weak", "strong", "typed_weak", "typed_strong"):
            summary = summarize(bsbm_small, kind)
            report = check_representativeness(bsbm_small, summary, queries)
            assert report.holds, (kind, [str(q) for q in report.failures])

    def test_summary_much_faster_to_query_than_graph(self, bsbm_small):
        # not a timing assertion (flaky) — a size argument: the summary the
        # query planner would explore is orders of magnitude smaller.
        summary = weak_summary(bsbm_small)
        assert len(summary.graph) * 20 < len(bsbm_small)


class TestSemanticPipeline:
    def test_saturation_then_summary_consistency_on_lubm(self, lubm_small):
        comparison = completeness_holds(lubm_small, "weak")
        assert comparison.equivalent

    def test_all_summaries_are_fixpoints_after_reload(self, tmp_path, fig2):
        for kind in ("weak", "strong", "typed_weak", "typed_strong"):
            summary = summarize(fig2, kind)
            path = tmp_path / f"{kind}.nt"
            dump_ntriples(summary.graph, path)
            reloaded = load_ntriples(path)
            resummarized = summarize(reloaded, kind)
            assert graphs_isomorphic(reloaded, resummarized.graph), kind

    def test_dot_export_of_every_kind(self, fig2):
        for kind in ("weak", "strong", "type", "typed_weak", "typed_strong"):
            summary = summarize(fig2, kind)
            dot = summary_to_dot(summary, show_extents=True)
            assert dot.count("->") == len(summary.graph)

    def test_exploration_scenario(self, bsbm_small):
        """A user explores an unknown dataset through its weak summary."""
        summary = weak_summary(bsbm_small)
        # every data property of the dataset is visible in the summary
        assert summary.graph.data_properties() == bsbm_small.data_properties()
        # and the summary tells which classes exist
        assert summary.graph.class_nodes() == bsbm_small.class_nodes()
        # a property the dataset does not use is absent from the summary
        assert check_fixpoint(summary)
