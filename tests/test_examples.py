"""Smoke tests: every example script must run to completion."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    # run inside a temporary directory so DOT/output files do not pollute the repo
    monkeypatch.chdir(tmp_path)
    if script.stem == "bsbm_exploration":
        # keep the runtime short by passing a small scale on argv
        monkeypatch.setattr(sys, "argv", [str(script), "40"])
    else:
        monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_SCRIPTS) >= 3


def test_quickstart_mentions_all_four_summary_kinds(capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    for kind in ("weak", "strong", "typed_weak", "typed_strong"):
        assert kind in output
