"""Tests for the RBGP workload generator."""

from repro.queries.evaluation import has_answers
from repro.queries.generator import RBGPQueryGenerator, generate_rbgp_workload
from repro.model.graph import RDFGraph


class TestGenerator:
    def test_generated_queries_are_rbgp(self, fig2):
        for query in generate_rbgp_workload(fig2, count=10, size=2, seed=3):
            assert query.is_rbgp()

    def test_generated_queries_have_answers_on_source(self, fig2):
        for query in generate_rbgp_workload(fig2, count=10, size=2, seed=5):
            assert has_answers(fig2, query)

    def test_deterministic_for_fixed_seed(self, fig2):
        first = generate_rbgp_workload(fig2, count=5, seed=9)
        second = generate_rbgp_workload(fig2, count=5, seed=9)
        assert [str(q) for q in first] == [str(q) for q in second]

    def test_different_seeds_differ(self, bsbm_small):
        first = generate_rbgp_workload(bsbm_small, count=8, seed=1)
        second = generate_rbgp_workload(bsbm_small, count=8, seed=2)
        assert [str(q) for q in first] != [str(q) for q in second]

    def test_empty_graph_yields_no_queries(self):
        generator = RBGPQueryGenerator(RDFGraph())
        assert generator.generate() is None
        assert generator.workload(5) == []

    def test_requested_count_respected(self, bsbm_small):
        queries = generate_rbgp_workload(bsbm_small, count=12, size=3, seed=4)
        assert len(queries) == 12

    def test_size_parameter_grows_queries(self, bsbm_small):
        small = generate_rbgp_workload(bsbm_small, count=5, size=1, seed=6)
        large = generate_rbgp_workload(bsbm_small, count=5, size=4, seed=6)
        average_small = sum(len(q.patterns) for q in small) / len(small)
        average_large = sum(len(q.patterns) for q in large) / len(large)
        assert average_large >= average_small

    def test_queries_on_bsbm_have_answers(self, bsbm_small):
        for query in generate_rbgp_workload(bsbm_small, count=6, size=2, seed=8):
            assert has_answers(bsbm_small, query)
