"""Tests for the BGP query model and the RBGP dialect check."""

import pytest

from repro.errors import NotRBGPError, QueryError
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import Literal
from repro.queries.bgp import BGPQuery, TriplePattern, Variable


class TestVariable:
    def test_name_normalization_strips_question_mark(self):
        assert Variable("?x") == Variable("x")

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            Variable("")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_str(self):
        assert str(Variable("x")) == "?x"


class TestTriplePattern:
    def test_variables_and_constants(self):
        pattern = TriplePattern(Variable("x"), EX.author, Variable("y"))
        assert pattern.variables() == {Variable("x"), Variable("y")}
        assert pattern.constants() == {EX.author}

    def test_literal_subject_rejected(self):
        with pytest.raises(QueryError):
            TriplePattern(Literal("x"), EX.p, Variable("y"))

    def test_is_type_pattern(self):
        assert TriplePattern(Variable("x"), RDF_TYPE, EX.Book).is_type_pattern()
        assert not TriplePattern(Variable("x"), EX.p, EX.Book).is_type_pattern()

    def test_bound_count(self):
        pattern = TriplePattern(Variable("x"), EX.p, Variable("y"))
        assert pattern.bound_count(set()) == 1
        assert pattern.bound_count({Variable("x")}) == 2
        assert pattern.bound_count({Variable("x"), Variable("y")}) == 3

    def test_equality(self):
        first = TriplePattern(Variable("x"), EX.p, Variable("y"))
        second = TriplePattern(Variable("x"), EX.p, Variable("y"))
        assert first == second
        assert hash(first) == hash(second)


class TestBGPQuery:
    def test_requires_at_least_one_pattern(self):
        with pytest.raises(QueryError):
            BGPQuery([], head=[])

    def test_head_variables_must_occur_in_body(self):
        pattern = TriplePattern(Variable("x"), EX.p, Variable("y"))
        with pytest.raises(QueryError):
            BGPQuery([pattern], head=[Variable("z")])

    def test_variables_collected_from_all_patterns(self):
        query = BGPQuery(
            [
                TriplePattern(Variable("x"), EX.p, Variable("y")),
                TriplePattern(Variable("y"), EX.q, Variable("z")),
            ],
            head=[Variable("x")],
        )
        assert query.variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_boolean_query(self):
        query = BGPQuery([TriplePattern(Variable("x"), EX.p, Variable("y"))])
        assert query.is_boolean()

    def test_str_rendering(self):
        query = BGPQuery([TriplePattern(Variable("x"), EX.p, Variable("y"))], head=[Variable("x")])
        assert str(query).startswith("q(?x)")


class TestRBGP:
    def test_valid_rbgp(self):
        query = BGPQuery(
            [
                TriplePattern(Variable("x"), EX.author, Variable("y")),
                TriplePattern(Variable("x"), RDF_TYPE, EX.Book),
            ],
            head=[Variable("x")],
        )
        assert query.is_rbgp()

    def test_variable_property_rejected(self):
        query = BGPQuery([TriplePattern(Variable("x"), Variable("p"), Variable("y"))])
        assert not query.is_rbgp()
        with pytest.raises(NotRBGPError):
            query.check_rbgp()

    def test_constant_object_in_data_pattern_rejected(self):
        query = BGPQuery([TriplePattern(Variable("x"), EX.hasTitle, Literal("t"))])
        assert not query.is_rbgp()

    def test_constant_subject_rejected(self):
        query = BGPQuery([TriplePattern(EX.r1, EX.author, Variable("y"))])
        assert not query.is_rbgp()

    def test_variable_class_in_type_pattern_rejected(self):
        query = BGPQuery([TriplePattern(Variable("x"), RDF_TYPE, Variable("c"))])
        assert not query.is_rbgp()
