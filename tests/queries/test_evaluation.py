"""Tests for BGP query evaluation."""

from repro.datasets.sample import FIG2
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import Literal
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import (
    count_answers,
    evaluate,
    evaluate_saturated,
    has_answers,
    iter_embeddings,
)


def _var(name):
    return Variable(name)


class TestEvaluate:
    def test_single_pattern_all_matches(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.title, _var("y"))], head=[_var("x")])
        answers = evaluate(fig2, query)
        assert answers == {(FIG2.r1,), (FIG2.r2,), (FIG2.r4,), (FIG2.r5,)}

    def test_join_across_patterns(self, fig2):
        query = BGPQuery(
            [
                TriplePattern(_var("x"), FIG2.author, _var("a")),
                TriplePattern(_var("a"), FIG2.reviewed, _var("r")),
            ],
            head=[_var("x"), _var("r")],
        )
        assert evaluate(fig2, query) == {(FIG2.r1, FIG2.r4)}

    def test_type_pattern(self, fig2):
        query = BGPQuery(
            [TriplePattern(_var("x"), RDF_TYPE, FIG2.Book)], head=[_var("x")]
        )
        assert evaluate(fig2, query) == {(FIG2.r1,), (FIG2.r2,)}

    def test_constant_object(self, fig2):
        query = BGPQuery(
            [TriplePattern(_var("x"), FIG2.editor, FIG2.e2)], head=[_var("x")]
        )
        assert evaluate(fig2, query) == {(FIG2.r3,), (FIG2.r5,)}

    def test_boolean_query_true(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.comment, _var("y"))])
        assert evaluate(fig2, query) == {()}

    def test_boolean_query_false(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.missing, _var("y"))])
        assert evaluate(fig2, query) == set()

    def test_shared_variable_must_bind_consistently(self, fig2):
        # x editor x: no resource is its own editor
        query = BGPQuery([TriplePattern(_var("x"), FIG2.editor, _var("x"))])
        assert evaluate(fig2, query) == set()

    def test_limit(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.title, _var("y"))], head=[_var("x")])
        assert len(evaluate(fig2, query, limit=2)) == 2

    def test_iter_embeddings_counts(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.title, _var("y"))], head=[_var("x")])
        assert len(list(iter_embeddings(fig2, query))) == 4


class TestSaturatedEvaluation:
    def test_incomplete_vs_complete_answers(self, book_graph):
        query = BGPQuery(
            [TriplePattern(_var("x"), RDF_TYPE, EX.Publication)], head=[_var("x")]
        )
        assert evaluate(book_graph, query) == set()
        assert evaluate_saturated(book_graph, query) == {(EX.doi1,)}

    def test_has_answers_flag(self, book_graph):
        query = BGPQuery([TriplePattern(_var("x"), EX.hasAuthor, _var("y"))])
        assert not has_answers(book_graph, query)
        assert has_answers(book_graph, query, saturated=True)

    def test_count_answers(self, fig2):
        query = BGPQuery([TriplePattern(_var("x"), FIG2.title, _var("y"))], head=[_var("x")])
        assert count_answers(fig2, query) == 4

    def test_count_answers_saturated(self, book_graph):
        query = BGPQuery(
            [TriplePattern(_var("x"), RDF_TYPE, EX.Person)], head=[_var("x")]
        )
        assert count_answers(book_graph, query) == 0
        assert count_answers(book_graph, query, saturated=True) == 1


class TestJoinOrdering:
    def test_selective_pattern_first_gives_same_answers(self, bsbm_small):
        from repro.datasets.bsbm import BSBM

        query = BGPQuery(
            [
                TriplePattern(_var("o"), BSBM.offeredProduct, _var("p")),
                TriplePattern(_var("o"), BSBM.vendor, _var("v")),
                TriplePattern(_var("p"), RDF_TYPE, BSBM.Product),
            ],
            head=[_var("o")],
        )
        answers = evaluate(bsbm_small, query)
        # every offer references a product and a vendor, so all offers match
        offers = {t.subject for t in bsbm_small.triples(predicate=BSBM.offeredProduct)}
        assert {a[0] for a in answers} == offers
