"""Tests for the SPARQL-like query parser."""

import pytest

from repro.errors import QueryParseError
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Literal, URI
from repro.queries.bgp import Variable
from repro.queries.parser import parse_query


class TestSelect:
    def test_simple_select(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y }")
        assert query.head == (Variable("x"),)
        assert len(query.patterns) == 1

    def test_multiple_patterns_split_on_dot(self):
        query = parse_query(
            "SELECT ?x ?z WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z }"
        )
        assert len(query.patterns) == 2
        assert query.head == (Variable("x"), Variable("z"))

    def test_prefix_declarations(self):
        query = parse_query(
            "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ?y }"
        )
        assert query.patterns[0].predicate == URI("http://e/p")

    def test_a_keyword(self):
        query = parse_query("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:Book }")
        assert query.patterns[0].predicate == RDF_TYPE
        assert query.patterns[0].object == URI("http://e/Book")

    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?x <http://e/p> ?y }")
        assert set(query.head) == {Variable("x"), Variable("y")}

    def test_literal_object(self):
        query = parse_query('SELECT ?x WHERE { ?x <http://e/title> "Le Port des Brumes" }')
        assert query.patterns[0].object == Literal("Le Port des Brumes")

    def test_typed_literal_object(self):
        query = parse_query(
            'SELECT ?x WHERE { ?x <http://e/year> "1932"^^<http://www.w3.org/2001/XMLSchema#integer> }'
        )
        assert query.patterns[0].object.datatype is not None

    def test_rdf_prefix_is_predeclared(self):
        query = parse_query("SELECT ?x WHERE { ?x rdf:type <http://e/Book> }")
        assert query.patterns[0].predicate == RDF_TYPE


class TestAsk:
    def test_ask_is_boolean(self):
        query = parse_query("ASK { ?x <http://e/p> ?y }")
        assert query.is_boolean()

    def test_ask_where_form(self):
        query = parse_query("ASK WHERE { ?x <http://e/p> ?y }")
        assert query.is_boolean()


class TestErrors:
    def test_missing_where_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x { ?x <http://e/p> ?y }")

    def test_wrong_arity_pattern_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x <http://e/p> }")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x foo:p ?y }")

    def test_empty_body_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE {  }")

    def test_select_without_variables_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT WHERE { ?x <http://e/p> ?y }")


class TestEdgeCases:
    def test_dots_inside_uris_do_not_split_patterns(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://www.w3.org/ns/prop.v1> ?y . ?y <http://e/q> ?z }"
        )
        assert len(query.patterns) == 2
        assert query.patterns[0].predicate == URI("http://www.w3.org/ns/prop.v1")

    def test_escaped_quote_inside_literal(self):
        query = parse_query(r'SELECT ?x WHERE { ?x <http://e/says> "he said \"hi\"" }')
        assert query.patterns[0].object == Literal('he said "hi"')

    def test_language_tagged_literal(self):
        query = parse_query('SELECT ?x WHERE { ?x <http://e/title> "Brumes"@fr }')
        assert query.patterns[0].object.language == "fr"

    def test_trailing_dot_is_optional(self):
        with_dot = parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y . }")
        without = parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y }")
        assert with_dot.patterns == without.patterns

    def test_newlines_and_tabs_between_terms(self):
        query = parse_query(
            "SELECT ?x ?z WHERE {\n\t?x <http://e/p> ?y .\n\t?y <http://e/q> ?z\n}"
        )
        assert len(query.patterns) == 2

    def test_blank_node_term(self):
        query = parse_query("SELECT ?x WHERE { _:b1 <http://e/p> ?x }")
        from repro.model.terms import BlankNode

        assert query.patterns[0].subject == BlankNode("b1")

    def test_prefix_redeclaration_overrides_default(self):
        query = parse_query(
            "PREFIX rdf: <http://other/> SELECT ?x WHERE { ?x rdf:thing ?y }"
        )
        assert query.patterns[0].predicate == URI("http://other/thing")

    def test_ask_with_multiple_patterns_and_a_keyword(self):
        query = parse_query(
            "PREFIX e: <http://e/> ASK { ?x a e:Book . ?x e:by ?y . ?y a e:Person }"
        )
        assert query.is_boolean()
        assert sum(1 for p in query.patterns if p.predicate == RDF_TYPE) == 2

    def test_select_head_not_in_body_raises(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_query("SELECT ?missing WHERE { ?x <http://e/p> ?y }")

    def test_four_terms_in_pattern_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y ?z . }")

    def test_garbage_token_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x <http://e/p> %%% }")


class TestEndToEnd:
    def test_parsed_query_evaluates(self, fig2):
        from repro.queries.evaluation import evaluate

        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> "
            "SELECT ?x WHERE { ?x f:author ?a . ?x a f:Book }"
        )
        answers = evaluate(fig2, query)
        assert answers == {(URI("http://example.org/fig2/r1"),)}
