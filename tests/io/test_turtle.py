"""Tests for the Turtle-subset parser and serializer."""

import pytest

from repro.errors import ParseError
from repro.io.turtle_lite import parse_turtle, serialize_turtle
from repro.model.namespaces import RDF_TYPE, XSD
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import Triple


SAMPLE = """
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:doi1 a ex:Book ;
    ex:hasTitle "Le Port des Brumes" ;
    ex:writtenBy _:b1 ;
    ex:publishedIn 1932 .

_:b1 ex:hasName "G. Simenon" .
"""


class TestParsing:
    def test_prefixed_names_resolved(self):
        graph = parse_turtle(SAMPLE)
        assert Triple(URI("http://example.org/doi1"), RDF_TYPE, URI("http://example.org/Book")) in graph

    def test_a_keyword_is_rdf_type(self):
        graph = parse_turtle("@prefix ex: <http://e/> .\nex:x a ex:C .\n")
        assert len(graph.type_triples) == 1

    def test_semicolon_shares_subject(self):
        graph = parse_turtle(SAMPLE)
        assert len(list(graph.triples(subject=URI("http://example.org/doi1")))) == 4

    def test_comma_shares_predicate(self):
        text = "@prefix ex: <http://e/> .\nex:x ex:p ex:a , ex:b , ex:c .\n"
        graph = parse_turtle(text)
        assert len(graph) == 3

    def test_bare_integer_becomes_xsd_integer(self):
        graph = parse_turtle(SAMPLE)
        values = graph.objects(URI("http://example.org/doi1"), URI("http://example.org/publishedIn"))
        assert Literal("1932", datatype=XSD.term("integer")) in values

    def test_decimal_literal(self):
        graph = parse_turtle("@prefix ex: <http://e/> .\nex:x ex:p 3.14 .\n")
        literal = next(iter(graph.literals()))
        assert literal.datatype == XSD.term("decimal")

    def test_blank_node_object_and_subject(self):
        graph = parse_turtle(SAMPLE)
        assert BlankNode("b1") in graph.nodes()

    def test_language_tag(self):
        graph = parse_turtle('@prefix ex: <http://e/> .\nex:x ex:p "chat"@fr .\n')
        assert Literal("chat", language="fr") in graph.literals()

    def test_typed_literal_with_prefixed_datatype(self):
        graph = parse_turtle('@prefix ex: <http://e/> .\nex:x ex:p "5"^^xsd:integer .\n')
        literal = next(iter(graph.literals()))
        assert literal.datatype.value.endswith("integer")

    def test_base_resolution(self):
        graph = parse_turtle("@base <http://base.org/> .\n<x> <p> <y> .\n")
        assert Triple(URI("http://base.org/x"), URI("http://base.org/p"), URI("http://base.org/y")) in graph

    def test_comments_ignored(self):
        graph = parse_turtle("# nothing\n@prefix ex: <http://e/> .\nex:a ex:p ex:b . # end\n")
        assert len(graph) == 1

    def test_undeclared_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("foo:x foo:p foo:y .\n")

    def test_literal_subject_raises(self):
        with pytest.raises(ParseError):
            parse_turtle('@prefix ex: <http://e/> .\n"lit" ex:p ex:y .\n')


class TestSerialization:
    def test_roundtrip_via_turtle(self, fig2):
        text = serialize_turtle(fig2, prefixes={"f": "http://example.org/fig2/"})
        parsed = parse_turtle(text)
        assert set(parsed) == set(fig2)

    def test_prefixes_used_in_output(self, fig2):
        text = serialize_turtle(fig2, prefixes={"f": "http://example.org/fig2/"})
        assert "f:r1" in text
        assert "@prefix f:" in text

    def test_rdf_type_rendered_as_a(self, fig2):
        text = serialize_turtle(fig2, prefixes={"f": "http://example.org/fig2/"})
        assert " a f:Book" in text

    def test_empty_graph(self):
        assert serialize_turtle([]) == ""
