"""Hardened escape handling in the N-Triples parser.

Covers the satellite fix to ``_unescape``: truncated / invalid ``\\uXXXX``
and ``\\UXXXXXXXX`` payloads, surrogate and out-of-range code points (all
now :class:`ParseError` with line context instead of bare ``ValueError`` or
silent mis-slices), plus property-based serialize→parse round-trips over
control characters, quotes, backslash runs and astral-plane code points.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.io.ntriples import parse_ntriples, parse_ntriples_line, serialize_ntriples
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX
from repro.model.terms import Literal
from repro.model.triple import Triple


def _literal_line(escaped: str) -> str:
    return f'<http://a> <http://p> "{escaped}" .'


class TestMalformedEscapes:
    @pytest.mark.parametrize(
        "payload",
        [
            "\\u12",          # truncated \u at end of literal
            "\\u12 after",    # truncated \u followed by more text (the old
                              # code silently decoded the short slice)
            "\\uGGGG",        # non-hex digits
            "\\u12G4",
            "\\U0001F60",     # truncated \U (7 digits)
            "\\UZZZZZZZZ",    # non-hex \U
        ],
    )
    def test_truncated_or_invalid_hex_raises_parse_error(self, payload):
        with pytest.raises(ParseError):
            parse_ntriples_line(_literal_line(payload))

    def test_truncated_escape_is_not_silently_missliced(self):
        # "\u41" must NOT decode to "A" (the old behaviour): it is an error.
        with pytest.raises(ParseError):
            parse_ntriples_line(_literal_line("\\u41"))

    @pytest.mark.parametrize("payload", ["\\uD800", "\\uDFFF", "\\U0000DAAA"])
    def test_surrogate_code_points_rejected(self, payload):
        with pytest.raises(ParseError) as info:
            parse_ntriples_line(_literal_line(payload))
        assert "surrogate" in str(info.value)

    def test_out_of_range_code_point_rejected(self):
        with pytest.raises(ParseError) as info:
            parse_ntriples_line(_literal_line("\\U00110000"))
        assert "U+10FFFF" in str(info.value)

    def test_dangling_backslash_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line(_literal_line("ends with \\"))

    def test_error_carries_line_context(self):
        source = '<http://a> <http://p> "fine" .\n<http://a> <http://p> "\\u12" .\n'
        with pytest.raises(ParseError) as info:
            parse_ntriples(source)
        assert info.value.line_number == 2
        assert info.value.line is not None and "\\u12" in info.value.line
        assert "(line 2)" in str(info.value)

    def test_never_raises_bare_value_error(self):
        for payload in ("\\u12", "\\uXYZW", "\\U0001F60", "\\U00110000", "\\uD800"):
            try:
                parse_ntriples_line(_literal_line(payload))
            except ParseError:
                pass  # the only acceptable outcome


class TestWellFormedEscapes:
    def test_astral_plane_escape(self):
        triple = parse_ntriples_line(_literal_line("\\U0001F600"))
        assert triple.object.lexical == "\U0001F600"

    def test_max_code_point(self):
        triple = parse_ntriples_line(_literal_line("\\U0010FFFF"))
        assert triple.object.lexical == "\U0010FFFF"

    def test_mixed_escapes(self):
        triple = parse_ntriples_line(_literal_line("a\\tb\\u0041\\\\c\\\"d"))
        assert triple.object.lexical == 'a\tbA\\c"d'


# ----------------------------------------------------------------------
# property-based round-trips
# ----------------------------------------------------------------------
_text_with_nasty_chars = st.text(
    alphabet=st.one_of(
        st.characters(min_codepoint=0x20, max_codepoint=0x7E),      # printable ASCII
        st.sampled_from(['"', "\\", "\n", "\r", "\t", "\b", "\f"]),  # escapes & controls
        st.characters(min_codepoint=0xA0, max_codepoint=0x2FFF),     # BMP text
        st.characters(min_codepoint=0x10000, max_codepoint=0x10FFFF),  # astral plane
    ),
    max_size=60,
)

_ROUND_TRIP_SETTINGS = settings(max_examples=80, deadline=None)


@_ROUND_TRIP_SETTINGS
@given(_text_with_nasty_chars)
def test_serialize_parse_identity(text):
    graph = RDFGraph([Triple(EX.s, EX.p, Literal(text))])
    parsed = parse_ntriples(serialize_ntriples(graph))
    assert set(parsed) == set(graph)


@_ROUND_TRIP_SETTINGS
@given(_text_with_nasty_chars, st.sampled_from(["en", "fr", "en-GB"]))
def test_language_literal_round_trip(text, language):
    graph = RDFGraph([Triple(EX.s, EX.p, Literal(text, language=language))])
    parsed = parse_ntriples(serialize_ntriples(graph))
    assert set(parsed) == set(graph)


@_ROUND_TRIP_SETTINGS
@given(st.lists(st.sampled_from(["\\", '"']), min_size=1, max_size=12))
def test_backslash_and_quote_runs_round_trip(chars):
    text = "".join(chars)
    graph = RDFGraph([Triple(EX.s, EX.p, Literal(text))])
    parsed = parse_ntriples(serialize_ntriples(graph))
    assert next(iter(parsed)).object.lexical == text
