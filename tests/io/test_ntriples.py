"""Tests for the N-Triples parser and serializer."""

import pytest

from repro.errors import ParseError
from repro.io.ntriples import (
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import Triple


class TestLineParsing:
    def test_uri_triple(self):
        triple = parse_ntriples_line("<http://a> <http://p> <http://b> .")
        assert triple == Triple(URI("http://a"), URI("http://p"), URI("http://b"))

    def test_blank_nodes(self):
        triple = parse_ntriples_line("_:s <http://p> _:o .")
        assert triple.subject == BlankNode("s")
        assert triple.object == BlankNode("o")

    def test_plain_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "hello" .')
        assert triple.object == Literal("hello")

    def test_language_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "bonjour"@fr .')
        assert triple.object == Literal("bonjour", language="fr")

    def test_typed_literal(self):
        triple = parse_ntriples_line(
            '<http://a> <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.object.datatype.value.endswith("integer")

    def test_escaped_literal(self):
        triple = parse_ntriples_line('<http://a> <http://p> "line\\nbreak \\"q\\"" .')
        assert triple.object.lexical == 'line\nbreak "q"'

    def test_unicode_escape(self):
        triple = parse_ntriples_line('<http://a> <http://p> "caf\\u00e9" .')
        assert triple.object.lexical == "café"

    def test_trailing_comment_allowed(self):
        triple = parse_ntriples_line("<http://a> <http://p> <http://b> . # comment")
        assert triple.predicate == URI("http://p")

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a> <http://p> <http://b>")

    def test_missing_object_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a> <http://p> .")

    def test_garbage_subject_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("nonsense <http://p> <http://b> .")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a> <http://p> <http://b> . extra")


class TestDocumentParsing:
    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\n<http://a> <http://p> <http://b> .\n"
        graph = parse_ntriples(text)
        assert len(graph) == 1

    def test_duplicate_lines_collapse(self):
        line = "<http://a> <http://p> <http://b> .\n"
        graph = parse_ntriples(line * 3)
        assert len(graph) == 1

    def test_parse_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_ntriples("<http://a> <http://p> <http://b> .\nbroken line\n")
        assert info.value.line_number == 2


class TestRoundtrip:
    def test_serialize_parse_roundtrip(self, fig2):
        text = serialize_ntriples(fig2)
        parsed = parse_ntriples(text)
        assert set(parsed) == set(fig2)

    def test_serialize_is_sorted_and_terminated(self):
        graph = [Triple(EX.b, EX.p, EX.o), Triple(EX.a, EX.p, EX.o)]
        text = serialize_ntriples(graph)
        lines = text.strip().split("\n")
        assert lines == sorted(lines)
        assert text.endswith("\n")

    def test_serialize_empty(self):
        assert serialize_ntriples([]) == ""

    def test_file_roundtrip(self, tmp_path, fig2):
        path = tmp_path / "fig2.nt"
        dump_ntriples(fig2, path)
        loaded = load_ntriples(path)
        assert set(loaded) == set(fig2)

    def test_roundtrip_with_literals_and_types(self, book_graph):
        text = serialize_ntriples(book_graph)
        assert set(parse_ntriples(text)) == set(book_graph)

    def test_type_triples_preserved(self):
        graph = parse_ntriples(
            f"<http://example.org/r> <{RDF_TYPE.value}> <http://example.org/Book> .\n"
        )
        assert len(graph.type_triples) == 1
