"""Tests for the GraphViz DOT export."""

from repro.core.builders import weak_summary
from repro.io.dot import graph_to_dot, summary_to_dot, write_dot
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import Literal
from repro.model.triple import Triple


class TestGraphToDot:
    def test_produces_digraph(self, fig2):
        dot = graph_to_dot(fig2)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_every_triple_becomes_an_edge(self, fig2):
        dot = graph_to_dot(fig2)
        assert dot.count("->") == len(fig2)

    def test_class_nodes_are_boxes(self, fig2):
        dot = graph_to_dot(fig2)
        assert "shape=box" in dot

    def test_type_edges_are_dashed(self, fig2):
        dot = graph_to_dot(fig2)
        assert "style=dashed" in dot

    def test_literals_rendered_plaintext(self):
        graph = RDFGraph([Triple(EX.s, EX.p, Literal("hello"))])
        dot = graph_to_dot(graph)
        assert "shape=plaintext" in dot

    def test_long_labels_truncated(self):
        graph = RDFGraph([Triple(EX.term("x" * 100), EX.p, EX.o)])
        dot = graph_to_dot(graph)
        assert "..." in dot

    def test_quotes_escaped_in_labels(self):
        graph = RDFGraph([Triple(EX.s, EX.p, Literal('say "hi"'))])
        dot = graph_to_dot(graph)
        assert '\\"hi\\"' in dot

    def test_schema_exclusion(self, book_graph):
        with_schema = graph_to_dot(book_graph, include_schema=True)
        without_schema = graph_to_dot(book_graph, include_schema=False)
        assert with_schema.count("->") > without_schema.count("->")


class TestSummaryToDot:
    def test_summary_export(self, fig2):
        summary = weak_summary(fig2)
        dot = summary_to_dot(summary)
        assert dot.count("->") == len(summary.graph)

    def test_extent_annotations(self, fig2):
        summary = weak_summary(fig2)
        dot = summary_to_dot(summary, show_extents=True)
        assert "nodes)" in dot

    def test_write_dot(self, tmp_path, fig2):
        path = tmp_path / "out.dot"
        write_dot(graph_to_dot(fig2), path)
        assert path.read_text().startswith("digraph")
