"""Tests for RDF saturation (the entailment rules of Section 2.1)."""

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    EX,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.terms import BlankNode, Literal
from repro.model.triple import Triple
from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import entails, is_saturated, saturate


class TestPaperExample:
    """The introductory example: the four implicit triples of Section 2.1."""

    def test_book_is_publication(self, book_graph):
        saturated = saturate(book_graph)
        assert Triple(EX.doi1, RDF_TYPE, EX.Publication) in saturated

    def test_written_by_entails_has_author(self, book_graph):
        saturated = saturate(book_graph)
        assert Triple(EX.doi1, EX.hasAuthor, BlankNode("b1")) in saturated

    def test_author_typed_person_via_range(self, book_graph):
        saturated = saturate(book_graph)
        assert Triple(BlankNode("b1"), RDF_TYPE, EX.Person) in saturated

    def test_domain_typing(self, book_graph):
        saturated = saturate(book_graph)
        assert Triple(EX.doi1, RDF_TYPE, EX.Book) in saturated

    def test_domain_propagated_up_subclass_in_schema(self, book_graph):
        # writtenBy ←d Publication is listed among the implicit triples.
        saturated = saturate(book_graph)
        assert Triple(EX.writtenBy, RDFS_DOMAIN, EX.Publication) in saturated

    def test_explicit_triples_preserved(self, book_graph):
        saturated = saturate(book_graph)
        for triple in book_graph:
            assert triple in saturated

    def test_query_complete_answer_matches_paper(self, book_graph):
        # q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 hasTitle "Le Port des Brumes"
        from repro.queries.bgp import BGPQuery, TriplePattern, Variable
        from repro.queries.evaluation import evaluate

        x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
        query = BGPQuery(
            [
                TriplePattern(x1, EX.hasAuthor, x2),
                TriplePattern(x2, EX.hasName, x3),
                TriplePattern(x1, EX.hasTitle, Literal("Le Port des Brumes")),
            ],
            head=[x3],
        )
        assert evaluate(book_graph, query) == set()
        assert evaluate(saturate(book_graph), query) == {(Literal("G. Simenon"),)}


class TestRules:
    def test_subclass_transitivity_on_instances(self):
        graph = RDFGraph(
            [
                Triple(EX.x, RDF_TYPE, EX.A),
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
            ]
        )
        saturated = saturate(graph)
        assert Triple(EX.x, RDF_TYPE, EX.B) in saturated
        assert Triple(EX.x, RDF_TYPE, EX.C) in saturated

    def test_subproperty_propagation(self):
        graph = RDFGraph(
            [
                Triple(EX.x, EX.p, EX.y),
                Triple(EX.p, RDFS_SUBPROPERTYOF, EX.q),
            ]
        )
        assert Triple(EX.x, EX.q, EX.y) in saturate(graph)

    def test_range_types_literal_values_too(self):
        # The paper's saturation types every value of a ranged property,
        # including literals (generalized type triples); this is what makes
        # the Prop. 5 / Prop. 8 shortcuts exact.
        graph = RDFGraph(
            [
                Triple(EX.x, EX.p, Literal("v")),
                Triple(EX.p, RDFS_RANGE, EX.C),
            ]
        )
        saturated = saturate(graph)
        assert Triple(Literal("v"), RDF_TYPE, EX.C) in saturated

    def test_domain_applied_through_subproperty(self):
        graph = RDFGraph(
            [
                Triple(EX.x, EX.p, EX.y),
                Triple(EX.p, RDFS_SUBPROPERTYOF, EX.q),
                Triple(EX.q, RDFS_DOMAIN, EX.C),
            ]
        )
        assert Triple(EX.x, RDF_TYPE, EX.C) in saturate(graph)

    def test_schema_closure_included(self):
        graph = RDFGraph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
            ]
        )
        assert Triple(EX.A, RDFS_SUBCLASSOF, EX.C) in saturate(graph)

    def test_external_schema_argument(self):
        data = RDFGraph([Triple(EX.x, EX.p, EX.y)])
        schema = RDFSchema([Triple(EX.p, RDFS_DOMAIN, EX.C)])
        assert Triple(EX.x, RDF_TYPE, EX.C) in saturate(data, schema=schema)


class TestFixpointBehaviour:
    def test_saturation_is_idempotent(self, book_graph):
        once = saturate(book_graph)
        twice = saturate(once)
        assert set(once) == set(twice)

    def test_is_saturated(self, book_graph):
        assert not is_saturated(book_graph)
        assert is_saturated(saturate(book_graph))

    def test_schema_less_graph_is_its_own_saturation(self, fig2):
        assert is_saturated(fig2)
        assert set(saturate(fig2)) == set(fig2)

    def test_entails(self, book_graph):
        assert entails(book_graph, Triple(EX.doi1, RDF_TYPE, EX.Publication))
        assert not entails(book_graph, Triple(EX.doi1, RDF_TYPE, EX.Person))

    def test_saturation_on_lubm_grows_graph(self, lubm_small):
        saturated = saturate(lubm_small)
        assert len(saturated) > len(lubm_small)
        # every original triple survives
        assert set(lubm_small) <= set(saturated)


class TestSaturationCache:
    def test_cached_object_is_reused_while_unchanged(self, book_graph):
        from repro.schema.saturation import saturate_cached

        first = saturate_cached(book_graph)
        second = saturate_cached(book_graph)
        assert first is second
        assert set(first) == set(saturate(book_graph))

    def test_mutation_invalidates_cache(self, book_graph):
        from repro.schema.saturation import saturate_cached

        graph = book_graph.copy()
        first = saturate_cached(graph)
        graph.add(Triple(EX.doi9, EX.writtenBy, EX.someone))
        second = saturate_cached(graph)
        assert second is not first
        assert Triple(EX.doi9, RDF_TYPE, EX.Book) in second

    def test_add_then_discard_still_invalidates(self, fig2):
        from repro.schema.saturation import saturate_cached

        graph = fig2.copy()
        first = saturate_cached(graph)
        extra = Triple(EX.tmp, EX.p, EX.q)
        graph.add(extra)
        graph.discard(extra)
        # same length as before, but the version counter moved twice
        assert len(graph) == len(fig2)
        second = saturate_cached(graph)
        assert second is not first
        assert set(second) == set(first)

    def test_explicit_schema_bypasses_cache(self, book_graph):
        from repro.schema.saturation import saturate_cached

        schema = RDFSchema.from_graph(book_graph)
        first = saturate_cached(book_graph, schema=schema)
        second = saturate_cached(book_graph, schema=schema)
        assert first is not second

    def test_version_counter_tracks_mutations(self, fig2):
        graph = fig2.copy()
        before = graph.version
        triple = Triple(EX.v, EX.p, EX.w)
        assert graph.add(triple)
        assert graph.version == before + 1
        assert not graph.add(triple)  # duplicate: no bump
        assert graph.version == before + 1
        assert graph.discard(triple)
        assert graph.version == before + 2


class TestSaturationCacheConcurrency:
    """The cache is shared by every executor worker thread — hammer it."""

    def test_concurrent_hits_and_churn(self, book_graph, fig2):
        import threading

        from repro.schema.saturation import _SATURATION_CACHE, saturate_cached

        shared = [book_graph.copy(), fig2.copy()]
        expected = [set(saturate(graph)) for graph in shared]
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_index):
            try:
                barrier.wait()
                for round_index in range(60):
                    graph_index = (worker_index + round_index) % len(shared)
                    result = saturate_cached(shared[graph_index])
                    if set(result) != expected[graph_index]:
                        errors.append(f"wrong saturation for graph {graph_index}")
                    # churn: private graphs enter and leave the cache (their
                    # finalizers run concurrently with the lookups above)
                    private = shared[graph_index].copy()
                    saturate_cached(private)
                    del private
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(repr(error))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # the shared graphs are still served from cache afterwards
        for graph, answer in zip(shared, expected):
            cached = saturate_cached(graph)
            assert set(cached) == answer
            assert _SATURATION_CACHE[id(graph)][1] is cached

    def test_concurrent_mutating_owners_never_cross_pollinate(self, book_graph):
        # each thread owns one graph it mutates and re-saturates; the
        # cache's shared dict must keep every owner's entry at its own
        # version (an unguarded install could clobber a concurrent one)
        import threading

        from repro.schema.saturation import saturate_cached

        errors = []
        barrier = threading.Barrier(6)

        def owner(index):
            try:
                graph = book_graph.copy()
                barrier.wait()
                for round_index in range(20):
                    marker = Triple(
                        EX.term(f"owner{index}-{round_index}"), EX.writtenBy, EX.someone
                    )
                    graph.add(marker)
                    result = saturate_cached(graph)
                    if marker not in result:
                        errors.append(f"owner {index} got a stale saturation")
                    if saturate_cached(graph) is not result:
                        errors.append(f"owner {index} lost its cache entry")
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(repr(error))

        threads = [threading.Thread(target=owner, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestEntailmentUsesCache:
    def test_entails_saturates_once_per_version(self, book_graph, monkeypatch):
        import repro.schema.saturation as saturation_module

        graph = book_graph.copy()
        calls = []
        real_saturate = saturation_module.saturate
        monkeypatch.setattr(
            saturation_module,
            "saturate",
            lambda *args, **kwargs: calls.append(1) or real_saturate(*args, **kwargs),
        )
        assert entails(graph, Triple(EX.doi1, RDF_TYPE, EX.Publication))
        assert entails(graph, Triple(EX.doi1, EX.hasAuthor, BlankNode("b1")))
        assert not is_saturated(graph)
        assert len(calls) == 1
        # a mutation invalidates: exactly one more saturation pass
        graph.add(Triple(EX.doi9, EX.writtenBy, EX.someone))
        assert entails(graph, Triple(EX.doi9, RDF_TYPE, EX.Book))
        assert entails(graph, Triple(EX.doi9, EX.hasAuthor, EX.someone))
        assert len(calls) == 2

    def test_explicit_schema_path_stays_exact_and_uncached(self, book_graph, monkeypatch):
        import repro.schema.saturation as saturation_module

        schema = RDFSchema.from_graph(book_graph)
        data_only = RDFGraph([t for t in book_graph if not t.is_schema()])
        calls = []
        real_saturate = saturation_module.saturate
        monkeypatch.setattr(
            saturation_module,
            "saturate",
            lambda *args, **kwargs: calls.append(1) or real_saturate(*args, **kwargs),
        )
        assert entails(data_only, Triple(EX.doi1, RDF_TYPE, EX.Publication), schema=schema)
        assert entails(data_only, Triple(EX.doi1, RDF_TYPE, EX.Publication), schema=schema)
        assert len(calls) == 2  # explicit-schema saturation is never cached

    def test_is_saturated_on_already_saturated_graph(self, book_graph):
        saturated = saturate(book_graph)
        assert is_saturated(saturated)
        assert not is_saturated(book_graph)
