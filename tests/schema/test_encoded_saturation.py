"""Delta-vs-full equivalence of the encoded incremental saturator.

The contract: however data / type / schema rows are interleaved into an
:class:`IncrementalSaturator`, the maintained target store must decode to
exactly ``saturate()`` of the final graph — including late-arriving schema
triples that retroactively derive from old data.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    EX,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.terms import Literal
from repro.model.triple import Triple, TripleKind
from repro.schema.encoded_saturation import IncrementalSaturator
from repro.schema.saturation import saturate
from repro.service.statistics import CardinalityStatistics
from repro.store.memory import MemoryStore


def _build_over(graph: RDFGraph) -> IncrementalSaturator:
    store = MemoryStore()
    store.load_graph(graph)
    saturator = IncrementalSaturator(store)
    saturator.build()
    return saturator


def _ingest_in_order(triples, batch_size=1) -> IncrementalSaturator:
    store = MemoryStore()
    saturator = IncrementalSaturator(store)
    triples = list(triples)
    for start in range(0, len(triples), batch_size):
        rows = store.insert_triples(triples[start : start + batch_size], skip_existing=True)
        saturator.ingest_rows(rows)
    return saturator


class TestFullBuildEquivalence:
    @pytest.mark.parametrize(
        "fixture", ["book_graph", "fig2", "bsbm_small", "lubm_small", "bibliography_small"]
    )
    def test_build_matches_saturate(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        saturator = _build_over(graph)
        assert set(saturator.snapshot()) == set(saturate(graph))

    def test_literal_range_values_are_typed(self):
        # the generalized type triples with literal subjects must survive
        # the encoded path exactly as they do the Term path
        graph = RDFGraph(
            [
                Triple(EX.title, RDFS_RANGE, EX.Name),
                Triple(EX.doc, EX.title, Literal("Le Port des Brumes")),
            ]
        )
        saturator = _build_over(graph)
        expected = {t for t in saturate(graph) if isinstance(t.subject, Literal)}
        assert expected
        got = {t for t in saturator.snapshot() if isinstance(t.subject, Literal)}
        assert got == expected

    def test_subclass_cycle_reaches_fixpoint(self):
        graph = RDFGraph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.A),
                Triple(EX.x, RDF_TYPE, EX.A),
            ]
        )
        saturator = _build_over(graph)
        assert set(saturator.snapshot()) == set(saturate(graph))


class TestIncrementalEquivalence:
    def test_one_by_one_matches_batch(self, book_graph):
        saturator = _ingest_in_order(sorted(book_graph))
        assert set(saturator.snapshot()) == set(saturate(book_graph))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_interleavings_converge(self, lubm_small, seed):
        triples = sorted(lubm_small)
        expected = set(saturate(lubm_small))
        shuffled = list(triples)
        rng = random.Random(seed)
        rng.shuffle(shuffled)
        saturator = _ingest_in_order(shuffled, batch_size=rng.randint(1, 9))
        assert set(saturator.snapshot()) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_adversarial_special_schema_interleavings(self, seed):
        # mixes type-valued and constraint-valued superproperties, a
        # subclass chain, domains/ranges and explicit typings — every
        # shuffle must still match the batch saturation exactly
        triples = [
            Triple(EX.p, RDFS_SUBPROPERTYOF, RDF_TYPE),
            Triple(EX.q, RDFS_SUBPROPERTYOF, EX.p),
            Triple(EX.r, RDFS_DOMAIN, EX.C),
            Triple(EX.r, RDFS_RANGE, EX.D),
            Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
            Triple(EX.D, RDFS_SUBCLASSOF, EX.E),
            Triple(EX.x, EX.p, EX.C),
            Triple(EX.x, EX.q, EX.D),
            Triple(EX.x, RDF_TYPE, EX.C),
            Triple(EX.y, EX.r, EX.x),
            Triple(EX.y, RDF_TYPE, EX.E),
            Triple(EX.z, EX.r, Literal("leaf")),
        ]
        rng = random.Random(seed)
        shuffled = list(triples)
        rng.shuffle(shuffled)
        saturator = _ingest_in_order(shuffled, batch_size=rng.randint(1, 5))
        assert set(saturator.snapshot()) == set(saturate(RDFGraph(triples)))

    def test_schema_last_retroactively_derives(self, book_graph):
        # every constraint arrives after every instance triple: the delta
        # path must re-derive from the old data exactly what the batch
        # saturation of the full graph contains
        triples = sorted(book_graph)
        instance = [t for t in triples if not t.is_schema()]
        schema = [t for t in triples if t.is_schema()]
        saturator = _ingest_in_order(instance + schema)
        assert set(saturator.snapshot()) == set(saturate(book_graph))

    def test_late_subproperty_of_subproperty(self):
        # p ≺sp q arrives long after the p-rows, then q ≺sp r even later:
        # the second delta must reach the old p-rows through q's closure
        data = [Triple(EX.term(f"s{i}"), EX.p, EX.term(f"o{i}")) for i in range(5)]
        first_schema = Triple(EX.p, RDFS_SUBPROPERTYOF, EX.q)
        second_schema = Triple(EX.q, RDFS_SUBPROPERTYOF, EX.r)
        domain_late = Triple(EX.r, RDFS_DOMAIN, EX.C)
        sequence = data + [first_schema, second_schema, domain_late]
        saturator = _ingest_in_order(sequence)
        final = RDFGraph(sequence)
        assert set(saturator.snapshot()) == set(saturate(final))
        # and concretely: old subjects got typed through the whole chain
        assert Triple(EX.term("s0"), RDF_TYPE, EX.C) in saturator.snapshot()

    def test_late_superclass_reaches_derived_typings(self):
        # x τ C was *derived* (via domain), then C ≺sc D arrives: the
        # re-derivation must retype x although no explicit type row exists
        sequence = [
            Triple(EX.p, RDFS_DOMAIN, EX.C),
            Triple(EX.x, EX.p, EX.y),
            Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
        ]
        saturator = _ingest_in_order(sequence)
        assert Triple(EX.x, RDF_TYPE, EX.D) in saturator.snapshot()
        assert set(saturator.snapshot()) == set(saturate(RDFGraph(sequence)))

    def test_type_valued_superproperty_routes_to_the_type_table(self):
        # p ≺sp rdf:type: the rdfs7 copy (x, τ, C) is a *type* row and must
        # land in the type table, or saturated type queries will miss it
        sequence = [
            Triple(EX.p, RDFS_SUBPROPERTYOF, RDF_TYPE),
            Triple(EX.x, EX.p, EX.C),
        ]
        for ordering in (sequence, list(reversed(sequence))):
            saturator = _ingest_in_order(ordering)
            assert set(saturator.snapshot()) == set(saturate(RDFGraph(ordering)))
            derived = list(
                saturator.target.select(TripleKind.TYPE, None, None, None)
            )
            assert len(derived) == 1  # (x, rdf:type, C) in the TYPE table

        # end-to-end: the saturated service path must answer the type query
        from repro.queries.parser import parse_query
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        query = parse_query(
            "SELECT ?s WHERE { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
            "<http://example.org/C> . }"
        )
        with GraphCatalog() as catalog:
            catalog.register("g", graph=RDFGraph(sequence, name="g"))
            # prune=False: a type-valued superproperty makes the graph
            # ill-behaved in the paper's sense, so the summary guard is
            # not sound here — the routing fix under test lives in the
            # saturated evaluator behind it
            answer = QueryService(catalog, prune=False).answer("g", query, saturated=True)
            assert answer.answers == {(EX.x,)}

    def test_explicit_type_row_behind_a_type_valued_copy_still_derives(self):
        # (x, τ, C) is first materialized as the rdfs7 copy of (x, p, C)
        # with p ≺sp τ — which, matching the batch semantics, gets no
        # rdfs9 pass.  The *explicit* (x, τ, C) arriving afterwards must
        # still derive its superclass typings despite the dedup skip.
        sequence = [
            Triple(EX.p, RDFS_SUBPROPERTYOF, RDF_TYPE),
            Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
            Triple(EX.x, EX.p, EX.C),
            Triple(EX.x, RDF_TYPE, EX.C),
        ]
        expected = set(saturate(RDFGraph(sequence)))
        assert Triple(EX.x, RDF_TYPE, EX.D) in expected
        for batch_size in (1, 2, 4):
            saturator = _ingest_in_order(sequence, batch_size=batch_size)
            assert set(saturator.snapshot()) == expected
        assert set(_build_over(RDFGraph(sequence)).snapshot()) == expected

    def test_constraint_valued_superproperty_routes_to_the_schema_table(self):
        # p ≺sp rdfs:domain: the copy (x, ←d, y) is a schema row in the
        # batch saturation's result — table placement must match
        sequence = [
            Triple(EX.q, RDFS_DOMAIN, EX.D),  # makes rdfs:domain's id known
            Triple(EX.p, RDFS_SUBPROPERTYOF, RDFS_DOMAIN),
            Triple(EX.x, EX.p, EX.y),
        ]
        saturator = _ingest_in_order(sequence)
        assert set(saturator.snapshot()) == set(saturate(RDFGraph(sequence)))
        schema_rows = set(saturator.target.select(TripleKind.SCHEMA, None, None, None))
        decoded = {saturator.target.decode_triple(row) for row in schema_rows}
        assert Triple(EX.x, RDFS_DOMAIN, EX.y) in decoded

    def test_range_types_late_literals(self):
        sequence = [
            Triple(EX.s, EX.p, Literal("leaf")),
            Triple(EX.p, RDFS_RANGE, EX.Leaf),
        ]
        saturator = _ingest_in_order(sequence)
        assert Triple(Literal("leaf"), RDF_TYPE, EX.Leaf) in saturator.snapshot()

    def test_ingest_returns_exactly_the_target_delta(self, book_graph):
        store = MemoryStore()
        saturator = IncrementalSaturator(store)
        statistics = CardinalityStatistics()
        for triple in sorted(book_graph):
            rows = store.insert_triples([triple], skip_existing=True)
            statistics.ingest_rows(saturator.ingest_rows(rows))
        # folding every returned delta into a profile reproduces a full
        # scan of the target — the catalog's in-place maintenance contract
        assert statistics == CardinalityStatistics.from_store(saturator.target)


class TestDurableState:
    def test_state_round_trip_rehydrates_identically(self, lubm_small):
        triples = sorted(lubm_small)
        store = MemoryStore()
        saturator = IncrementalSaturator(store)
        rows = store.insert_triples(triples[:-10], skip_existing=True)
        saturator.ingest_rows(rows)

        state = pickle.loads(pickle.dumps(saturator.state_dict()))
        restored_store = MemoryStore()
        restored_store.dictionary = store.dictionary
        restored = IncrementalSaturator(restored_store)
        # the base rows live in the (restored) base store, the derived log
        # in the state: rehydration applies no rules
        restored_store.insert_triples(triples[:-10], skip_existing=True)
        restored.load_state(state)
        restored.rehydrate()
        assert set(restored.snapshot()) == set(saturator.snapshot())

        # and further ingests continue exactly where the original left off
        for source, target_store in ((saturator, store), (restored, restored_store)):
            new_rows = target_store.insert_triples(triples[-10:], skip_existing=True)
            source.ingest_rows(new_rows)
        assert set(restored.snapshot()) == set(saturator.snapshot())
        assert set(restored.snapshot()) == set(saturate(lubm_small))

    def test_restored_saturator_keeps_special_property_routing(self):
        # the table-routing id set is derived state: a restored saturator
        # must still send rdfs7 copies over rdf:type to the TYPE table
        store = MemoryStore()
        saturator = IncrementalSaturator(store)
        rows = store.insert_triples(
            [Triple(EX.p, RDFS_SUBPROPERTYOF, RDF_TYPE), Triple(EX.x, EX.p, EX.C)],
            skip_existing=True,
        )
        saturator.ingest_rows(rows)

        restored_store = MemoryStore()
        restored_store.dictionary = store.dictionary
        restored_store.insert_triples(
            [Triple(EX.p, RDFS_SUBPROPERTYOF, RDF_TYPE), Triple(EX.x, EX.p, EX.C)],
            skip_existing=True,
        )
        restored = IncrementalSaturator(restored_store)
        restored.load_state(pickle.loads(pickle.dumps(saturator.state_dict())))
        restored.rehydrate()
        new_rows = restored_store.insert_triples(
            [Triple(EX.y, EX.p, EX.D)], skip_existing=True
        )
        restored.ingest_rows(new_rows)
        type_rows = {
            restored.target.decode_triple(row)
            for row in restored.target.select(TripleKind.TYPE, None, None, None)
        }
        assert Triple(EX.y, RDF_TYPE, EX.D) in type_rows

    def test_load_state_rejects_incomplete_state(self):
        saturator = IncrementalSaturator(MemoryStore())
        with pytest.raises(ValueError, match="incomplete saturator state"):
            saturator.load_state({"_derived": []})

    def test_derived_since_tracks_batches(self):
        store = MemoryStore()
        saturator = IncrementalSaturator(store)
        rows = store.insert_triples(
            [Triple(EX.p, RDFS_DOMAIN, EX.C), Triple(EX.a, EX.p, EX.b)],
            skip_existing=True,
        )
        saturator.ingest_rows(rows)
        mark = saturator.derived_count()
        rows = store.insert_triples([Triple(EX.c, EX.p, EX.d)], skip_existing=True)
        saturator.ingest_rows(rows)
        appended = saturator.derived_since(mark)
        # exactly the new derivation (c τ C); the base row is not logged
        assert appended == saturator.state_dict()["_derived"][mark:]
        assert [kind for kind, *_ in appended] == [TripleKind.TYPE.value]
