"""Tests for RDFS constraint extraction and closure."""

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    EX,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.triple import Triple
from repro.schema.rdfs import RDFSchema


def _schema_graph():
    return RDFGraph(
        [
            Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication),
            Triple(EX.Publication, RDFS_SUBCLASSOF, EX.Work),
            Triple(EX.writtenBy, RDFS_SUBPROPERTYOF, EX.hasAuthor),
            Triple(EX.hasAuthor, RDFS_SUBPROPERTYOF, EX.hasContributor),
            Triple(EX.writtenBy, RDFS_DOMAIN, EX.Book),
            Triple(EX.writtenBy, RDFS_RANGE, EX.Person),
        ]
    )


class TestExtraction:
    def test_from_graph_only_reads_schema_component(self, book_graph):
        schema = RDFSchema.from_graph(book_graph)
        assert len(schema) == 4

    def test_add_rejects_non_schema(self):
        schema = RDFSchema()
        assert schema.add(Triple(EX.a, EX.p, EX.b)) is False
        assert schema.is_empty()

    def test_triples_returns_original(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication) in schema.triples()


class TestClosure:
    def test_transitive_subclasses(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert schema.superclasses(EX.Book) == {EX.Publication, EX.Work}
        assert schema.superclasses(EX.Publication) == {EX.Work}
        assert schema.superclasses(EX.Work) == set()

    def test_transitive_subproperties(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert schema.superproperties(EX.writtenBy) == {EX.hasAuthor, EX.hasContributor}

    def test_domains_include_superclasses(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert schema.domains(EX.writtenBy) == {EX.Book, EX.Publication, EX.Work}

    def test_ranges(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert schema.ranges(EX.writtenBy) == {EX.Person}

    def test_domain_inherited_from_superproperty(self):
        graph = RDFGraph(
            [
                Triple(EX.headOf, RDFS_SUBPROPERTYOF, EX.worksFor),
                Triple(EX.worksFor, RDFS_DOMAIN, EX.Employee),
            ]
        )
        schema = RDFSchema.from_graph(graph)
        assert EX.Employee in schema.domains(EX.headOf)

    def test_cycle_does_not_hang(self):
        graph = RDFGraph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.A),
            ]
        )
        schema = RDFSchema.from_graph(graph)
        assert EX.B in schema.superclasses(EX.A)
        assert EX.A in schema.superclasses(EX.B)

    def test_saturated_property_set(self):
        schema = RDFSchema.from_graph(_schema_graph())
        saturated = schema.saturated_property_set({EX.writtenBy})
        assert saturated == {EX.writtenBy, EX.hasAuthor, EX.hasContributor}

    def test_closure_triples_contain_entailed_constraints(self):
        schema = RDFSchema.from_graph(_schema_graph())
        closure = schema.closure_triples()
        assert Triple(EX.Book, RDFS_SUBCLASSOF, EX.Work) in closure
        assert Triple(EX.writtenBy, RDFS_SUBPROPERTYOF, EX.hasContributor) in closure
        assert Triple(EX.writtenBy, RDFS_DOMAIN, EX.Publication) in closure

    def test_classes_and_properties_inventories(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert EX.Work in schema.classes()
        assert EX.Person in schema.classes()
        assert EX.writtenBy in schema.properties()

    def test_incremental_add_invalidates_closure(self):
        schema = RDFSchema.from_graph(_schema_graph())
        assert EX.Reference not in schema.superclasses(EX.Book)
        schema.add(Triple(EX.Work, RDFS_SUBCLASSOF, EX.Reference))
        assert EX.Reference in schema.superclasses(EX.Book)

    def test_empty_schema(self):
        schema = RDFSchema()
        assert schema.is_empty()
        assert schema.superclasses(EX.Book) == set()
        assert schema.closure_triples() == set()


class TestCycleClosure:
    def test_cycle_members_reach_themselves(self):
        graph = RDFGraph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.A),
            ]
        )
        schema = RDFSchema.from_graph(graph)
        # rdfs11 on a cycle entails the self-loops; the old memoized DFS
        # dropped them for whichever member was visited first
        assert EX.A in schema.superclasses(EX.A)
        assert EX.B in schema.superclasses(EX.B)

    def test_saturation_idempotent_on_cycles(self):
        from repro.schema.saturation import saturate

        graph = RDFGraph(
            [
                Triple(EX.C0, RDFS_SUBCLASSOF, EX.C1),
                Triple(EX.C1, RDFS_SUBCLASSOF, EX.C2),
                Triple(EX.C2, RDFS_SUBCLASSOF, EX.C0),
            ]
        )
        once = saturate(graph)
        assert set(saturate(once)) == set(once)
