"""Worker crash recovery and ingest/scatter races: no failed requests,
no wrong answers, ever."""

import os
import signal
import threading
import time

import pytest

from repro.cluster import ClusterCoordinator
from repro.model.terms import URI
from repro.model.triple import Triple
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService


@pytest.fixture
def crash_cluster(bsbm_small):
    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    serial_catalog = GraphCatalog()
    serial_catalog.register("g", graph=bsbm_small)
    service = QueryService(serial_catalog)
    coordinator = ClusterCoordinator(catalog, workers=2, heartbeat_seconds=0.2)
    yield coordinator, service, serial_catalog
    coordinator.close()
    catalog.close()
    serial_catalog.close()


def _wait_alive(coordinator, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(w["alive"] for w in coordinator.status()["workers"]):
            return
        time.sleep(0.05)
    raise AssertionError("workers never came back alive")


def test_sigkill_worker_recovers_with_zero_diffs(crash_cluster, bsbm_small):
    coordinator, service, _ = crash_cluster
    queries = generate_rbgp_workload(bsbm_small, count=12, seed=3)
    for query in queries[:3]:  # warm both replicas
        coordinator.answer("g", query)
    victim = coordinator.status()["workers"][0]["pid"]
    os.kill(victim, signal.SIGKILL)
    # every request after the kill must still succeed and match serial —
    # the coordinator respawns and retries internally
    for query in queries:
        serial = service.answer("g", query)
        clustered = coordinator.answer("g", query)
        assert clustered.answers == serial.answers, query.to_sparql()
    status = coordinator.status()
    assert sum(w["respawns"] for w in status["workers"]) >= 1
    assert all(w["alive"] for w in status["workers"])


def test_kill_mid_query_stream(crash_cluster, bsbm_small):
    """SIGKILL workers while a query stream is in flight: zero client
    failures, zero answer diffs."""
    coordinator, service, _ = crash_cluster
    queries = generate_rbgp_workload(bsbm_small, count=10, seed=17)
    reference = {q.to_sparql(): service.answer("g", q).answers for q in queries}
    errors = []
    diffs = []
    stop = threading.Event()

    def client():
        while not stop.is_set():
            for query in queries:
                try:
                    answer = coordinator.answer("g", query)
                except Exception as error:  # noqa: BLE001 - the assertion
                    errors.append(error)
                    stop.set()
                    return
                if answer.answers != reference[query.to_sparql()]:
                    diffs.append(query.to_sparql())

    threads = [threading.Thread(target=client) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(2):  # two rounds of murder mid-stream
            time.sleep(0.3)
            for worker in coordinator.status()["workers"]:
                if worker["pid"] is not None and worker["alive"]:
                    os.kill(worker["pid"], signal.SIGKILL)
                    break
            _wait_alive(coordinator)
    finally:
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
    assert not errors, errors[:1]
    assert not diffs, diffs[:3]


def test_worker_sigterm_drains_and_respawns(crash_cluster, bsbm_small):
    """SIGTERM is the graceful half: the worker finishes its message in
    hand, exits, and the heartbeat resurrects the slot."""
    coordinator, service, _ = crash_cluster
    victim = coordinator.status()["workers"][1]["pid"]
    os.kill(victim, signal.SIGTERM)
    _wait_alive(coordinator)
    queries = generate_rbgp_workload(bsbm_small, count=6, seed=23)
    for query in queries:
        assert (
            coordinator.answer("g", query).answers
            == service.answer("g", query).answers
        )


def test_ingest_while_worker_down_is_not_lost(crash_cluster):
    coordinator, service, serial_catalog = crash_cluster
    victim = coordinator.status()["workers"][0]["pid"]
    os.kill(victim, signal.SIGKILL)
    triples = [
        Triple(URI("http://down/s"), URI("http://down/p"), URI(f"http://down/o{i}"))
        for i in range(5)
    ]
    # ingest lands while a worker is dead: the respawn's re-shipped
    # snapshot (or the queued delta) must carry it — never lose a row
    coordinator.add_triples("g", triples)
    serial_catalog.add_triples("g", triples)
    query = parse_query("SELECT ?o WHERE { <http://down/s> <http://down/p> ?o }")
    clustered = coordinator.answer("g", query)
    assert clustered.answers == service.answer("g", query).answers
    assert len(clustered.answers) == 5


def test_barrier_synchronized_ingest_vs_scatter(crash_cluster):
    """Concurrent ingest and scatter-gather: BGP answers are monotone
    under inserts, so every observed answer set must satisfy
    initial ⊆ observed ⊆ final — and the final states must agree."""
    coordinator, service, serial_catalog = crash_cluster
    query = parse_query("SELECT ?o WHERE { <http://race/s> <http://race/p> ?o }")
    initial = coordinator.answer("g", query).answers
    assert initial == set()

    rounds = 6
    batches = [
        [
            Triple(
                URI("http://race/s"),
                URI("http://race/p"),
                URI(f"http://race/o{round_index}_{i}"),
            )
            for i in range(3)
        ]
        for round_index in range(rounds)
    ]
    final_terms = {
        (triple.object,) for batch in batches for triple in batch
    }
    barrier = threading.Barrier(2)
    observed = []
    failures = []

    def ingester():
        for batch in batches:
            barrier.wait()
            coordinator.add_triples("g", batch)

    def querier():
        for _ in batches:
            barrier.wait()
            try:
                for _ in range(3):
                    observed.append(coordinator.answer("g", query).answers)
            except Exception as error:  # noqa: BLE001 - the assertion
                failures.append(error)
                return

    threads = [threading.Thread(target=ingester), threading.Thread(target=querier)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures[:1]
    for answers in observed:
        assert answers <= final_terms  # never an answer that was never true
    # settled state: cluster and serial agree exactly
    for batch in batches:
        serial_catalog.add_triples("g", batch)
    assert coordinator.answer("g", query).answers == final_terms
    assert service.answer("g", query).answers == final_terms
