"""Regressions for the coordinator/worker failure-path review fixes:
deferred queries must be answered (never abandoned) across drops and
re-ships, registration snapshots once, and sustained ingest during a
respawn re-ship must never wedge the write path."""

import os
import signal
import threading
import time

import pytest

from repro.cluster import ClusterCoordinator, protocol
from repro.cluster.worker import TARGET_FULL, _Worker
from repro.model.terms import URI
from repro.model.triple import Triple
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.store.memory import MemoryStore


class _PipeStub:
    """Collects a worker's replies instead of crossing a process pipe."""

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def close(self):
        pass


def _triples(count, prefix="http://x"):
    return [
        Triple(URI(f"{prefix}/s"), URI(f"{prefix}/p"), URI(f"{prefix}/o{i}"))
        for i in range(count)
    ]


def _load_payload(store, name="g", version=0, shards=1):
    return (
        name,
        version,
        (
            protocol.TABLES_INLINE,
            protocol.pack_term_chunks(store.dictionary),
            protocol.pack_all_shard_tables(store, shards)[0],
            protocol.pack_full_tables(store),
            protocol.BYTEORDER,
        ),
        [],
    )


def _query_payload(min_version):
    return (
        "g",
        min_version,
        "SELECT ?o WHERE { <http://x/s> <http://x/p> ?o }",
        TARGET_FULL,
        None,
        False,
        False,
    )


def test_drop_answers_deferred_queries_with_unknown_graph():
    """A drop must reply to deferred version-fenced queries instead of
    discarding them — the coordinator-side waiter would otherwise hang
    for the full request timeout."""
    worker = _Worker(_PipeStub(), {"shard_index": 0, "shard_count": 1})
    store = MemoryStore()
    store.insert_triples(_triples(3))
    worker.handle_load(_load_payload(store))
    fenced = _query_payload(min_version=99)
    assert not worker._query_ready(fenced)
    worker.deferred.append((7, fenced))
    worker.handle_drop(("g",))
    assert worker.deferred == []
    replies = {rid: (status, payload) for rid, status, payload in worker.connection.sent}
    status, payload = replies[7]
    assert status == "error"
    assert payload[0] == "unknown_graph"
    store.close()


def test_reship_load_answers_deferred_queries():
    """A re-ship/replace load keeps deferred queries and answers them from
    the fresh copy once the version catches up."""
    worker = _Worker(_PipeStub(), {"shard_index": 0, "shard_count": 1})
    store = MemoryStore()
    store.insert_triples(_triples(2))
    worker.handle_load(_load_payload(store, version=0))
    fenced = _query_payload(min_version=1)
    assert not worker._query_ready(fenced)
    worker.deferred.append((11, fenced))
    # the snapshot a respawn would ship: one more row, version 1
    store.insert_triples(_triples(3))
    worker.handle_load(_load_payload(store, version=1))
    assert worker.deferred == []
    replies = {rid: (status, payload) for rid, status, payload in worker.connection.sent}
    status, payload = replies[11]
    assert status == "ok"
    assert len(payload["answers"]) == 3
    store.close()


def test_register_snapshots_once(bsbm_small, monkeypatch):
    """register() must pack the shard tables once for all K workers, not
    re-partition the whole store per worker."""
    calls = []
    real = protocol.pack_all_shard_tables

    def counting(store, shard_count):
        calls.append(shard_count)
        return real(store, shard_count)

    monkeypatch.setattr(protocol, "pack_all_shard_tables", counting)
    catalog = GraphCatalog()
    coordinator = ClusterCoordinator(catalog, workers=3, heartbeat_seconds=0)
    try:
        coordinator.register("bsbm", graph=bsbm_small)
        assert calls == [3]
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert coordinator.answer("bsbm", query).answers
    finally:
        coordinator.close()
        catalog.close()


def test_ingest_during_respawn_reship_does_not_wedge(bsbm_small):
    """Sustained ingest with a depth-1 delta queue while a worker is being
    respawned and re-shipped: the write path must keep moving (the re-ship
    snapshot subsumes dropped deltas) and no row may be lost."""
    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    coordinator = ClusterCoordinator(
        catalog, workers=2, heartbeat_seconds=0.1, delta_queue_depth=1
    )
    try:
        victim = coordinator.status()["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        done = threading.Event()
        failures = []

        def ingest():
            try:
                for i in range(30):
                    coordinator.add_triples(
                        "g",
                        [
                            Triple(
                                URI(f"http://wedge/s{i % 3}"),
                                URI("http://wedge/p"),
                                URI(f"http://wedge/o{i}"),
                            )
                        ],
                    )
            except Exception as error:  # noqa: BLE001 - the assertion
                failures.append(error)
            finally:
                done.set()

        thread = threading.Thread(target=ingest, daemon=True)
        thread.start()
        assert done.wait(timeout=60), "ingest wedged during the respawn re-ship"
        thread.join(timeout=10)
        assert not failures, failures[:1]
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if all(w["alive"] for w in coordinator.status()["workers"]):
                break
            time.sleep(0.05)
        query = parse_query("SELECT ?s ?o WHERE { ?s <http://wedge/p> ?o }")
        answer = coordinator.answer("g", query)
        assert len(answer.answers) == 30  # dropped deltas were subsumed
    finally:
        coordinator.close()
        catalog.close()


@pytest.mark.parametrize("seed", [1])
def test_concurrent_register_and_ingest_other_graph(bsbm_small, seed):
    """Registering a new graph while another graph ingests: neither path
    may deadlock on the ship locks, and both end complete."""
    catalog = GraphCatalog()
    catalog.register("base", graph=bsbm_small)
    coordinator = ClusterCoordinator(
        catalog, workers=2, heartbeat_seconds=0, delta_queue_depth=1
    )
    try:
        done = threading.Event()
        failures = []

        def ingest():
            try:
                for i in range(20):
                    coordinator.add_triples(
                        "base",
                        [
                            Triple(
                                URI(f"http://reg/s{i}"),
                                URI("http://reg/p"),
                                URI(f"http://reg/o{i}"),
                            )
                        ],
                    )
            except Exception as error:  # noqa: BLE001 - the assertion
                failures.append(error)
            finally:
                done.set()

        thread = threading.Thread(target=ingest, daemon=True)
        thread.start()
        coordinator.register("extra", graph=bsbm_small)
        assert done.wait(timeout=60), "ingest wedged behind register()"
        thread.join(timeout=10)
        assert not failures, failures[:1]
        query = parse_query("SELECT ?s ?o WHERE { ?s <http://reg/p> ?o }")
        assert len(coordinator.answer("base", query).answers) == 20
        probe = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert coordinator.answer("extra", probe).answers
    finally:
        coordinator.close()
        catalog.close()


def test_crash_retry_budget_separate_from_ship_waits(bsbm_small, monkeypatch):
    """A slow request can straddle two worker deaths (two crash retries —
    the whole budget) *and* reach a respawned worker before its re-ship
    lands (an unknown-graph wait).  The wait must not be charged against
    the crash budget, or exactly that interleaving fails spuriously."""
    from repro.cluster.coordinator import UnknownGraphError, WorkerCrashedError

    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    coordinator = ClusterCoordinator(catalog, workers=1, heartbeat_seconds=0)
    try:
        assert coordinator.max_retries == 2
        handle = coordinator._workers[0]
        script = [
            WorkerCrashedError("worker 0 pipe closed"),
            UnknownGraphError("g"),  # respawn raced the re-ship
            WorkerCrashedError("worker 0 pipe closed"),
        ]
        real_request = coordinator._request

        def scripted(h, op, payload, timeout):
            if script:
                raise script.pop(0)
            return real_request(h, op, payload, timeout)

        monkeypatch.setattr(coordinator, "_request", scripted)
        monkeypatch.setattr(
            coordinator, "_ensure_alive", lambda handle, generation: None
        )
        reply, retries = coordinator._call_with_retry(
            handle, protocol.OP_PING, ("g",), 30.0
        )
        assert retries == 3  # two crashes + one ship wait, all survived
        assert not script
    finally:
        coordinator.close()
        catalog.close()


def test_crash_during_respawn_reship_is_retried(bsbm_small, monkeypatch):
    """A second kill can land while _ensure_alive is still re-shipping the
    first victim's replacement: the re-ship's own crash must feed back
    into the retry loop (budget-checked), not escape to the client."""
    from repro.cluster.coordinator import WorkerCrashedError

    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    coordinator = ClusterCoordinator(catalog, workers=1, heartbeat_seconds=0)
    try:
        handle = coordinator._workers[0]
        request_script = [WorkerCrashedError("worker 0 pipe closed")]
        ensure_script = [WorkerCrashedError("worker 0 send failed: died mid-reship")]
        real_request = coordinator._request
        real_ensure = coordinator._ensure_alive

        def scripted_request(h, op, payload, timeout):
            if request_script:
                raise request_script.pop(0)
            return real_request(h, op, payload, timeout)

        def scripted_ensure(h, generation):
            if ensure_script:
                raise ensure_script.pop(0)
            return real_ensure(h, generation)

        monkeypatch.setattr(coordinator, "_request", scripted_request)
        monkeypatch.setattr(coordinator, "_ensure_alive", scripted_ensure)
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        answer = coordinator.answer("g", query)
        assert answer.answers
        assert not request_script and not ensure_script
    finally:
        coordinator.close()
        catalog.close()
