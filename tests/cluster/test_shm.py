"""The shared-memory segment plane: registry pack/attach round trips,
generation folds, unlink hygiene, crash injection (worker SIGKILL must not
repack or leak), and the no-leaked-``/dev/shm``-segments guarantee."""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cluster import ClusterCoordinator, protocol, shm
from repro.model.terms import URI
from repro.model.triple import Triple, TripleKind
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.store.memory import MemoryStore

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="named shared memory unavailable"
)


def _store(count=64):
    store = MemoryStore()
    store.insert_triples(
        Triple(URI(f"http://x/s{i % 9}"), URI(f"http://x/p{i % 3}"), URI(f"http://x/o{i}"))
        for i in range(count)
    )
    return store


def _pack(registry, store, name="g", version=0, shards=2):
    return registry.pack(
        name,
        version,
        protocol.pack_term_chunks(store.dictionary),
        protocol.pack_all_shard_tables(store, shards),
        protocol.pack_full_tables(store),
        protocol.BYTEORDER,
    )


class TestRegistry:
    def test_pack_attach_round_trip(self):
        store = _store()
        registry = shm.SegmentRegistry()
        try:
            segment_name, directory = _pack(registry, store)
            assert directory["byteorder"] == protocol.BYTEORDER
            segment = shm.attach(segment_name)
            try:
                buffer = segment.buf
                target = MemoryStore()
                offset, length = directory["terms"]
                import pickle

                chunks = pickle.loads(bytes(buffer[offset : offset + length]))
                protocol.unpack_term_chunks(chunks, target.dictionary)
                assert len(target.dictionary) == len(store.dictionary)
                tables = directory["targets"]["full"]
                count, s_off, p_off, o_off = tables[TripleKind.DATA.value]
                nbytes = count * 8
                target.adopt_column_buffers(
                    TripleKind.DATA,
                    buffer[s_off : s_off + nbytes],
                    buffer[p_off : p_off + nbytes],
                    buffer[o_off : o_off + nbytes],
                )
                whole = {r for b in store.scan_batches(TripleKind.DATA) for r in b}
                got = {r for b in target.scan_batches(TripleKind.DATA) for r in b}
                assert got == whole
                # shard targets partition the same rows
                shard_rows = []
                for index in (0, 1):
                    entry = directory["targets"][index].get(TripleKind.DATA.value)
                    if entry:
                        shard_rows.append(entry[0])
                assert sum(shard_rows) == len(whole)
                target.close()
            finally:
                segment.close()
        finally:
            registry.close()
            store.close()
        assert shm.list_segments() == []

    def test_fold_replaces_generation(self):
        store = _store()
        registry = shm.SegmentRegistry()
        try:
            first_name, first_directory = _pack(registry, store, version=0)
            assert first_directory["generation"] == 1
            assert first_name in shm.list_segments()
            second_name, second_directory = _pack(registry, store, version=5)
            assert second_directory["generation"] == 2
            assert second_directory["version"] == 5
            assert second_name != first_name
            live = shm.list_segments()
            # at most one named segment per graph at any instant
            assert second_name in live and first_name not in live
            assert registry.packs == 2
            assert registry.descriptor("g") == (second_name, second_directory)
        finally:
            registry.close()
            store.close()

    def test_unlink_is_idempotent(self):
        store = _store(8)
        registry = shm.SegmentRegistry()
        _pack(registry, store)
        registry.unlink("g")
        registry.unlink("g")  # second unlink: no error
        registry.unlink("never-registered")
        assert registry.descriptor("g") is None
        assert shm.list_segments() == []
        registry.close()
        store.close()

    def test_unlinked_segment_survives_for_attached_readers(self):
        """POSIX semantics the fold relies on: unlink removes the name,
        live mappings keep working."""
        store = _store(16)
        registry = shm.SegmentRegistry()
        segment_name, directory = _pack(registry, store)
        segment = shm.attach(segment_name)
        registry.unlink("g")
        assert shm.list_segments() == []  # name gone...
        offset, length = directory["terms"]
        assert len(bytes(segment.buf[offset : offset + length])) == length  # ...data not
        segment.close()
        registry.close()
        store.close()


def test_sigkilled_attacher_leaves_segment_intact():
    """A worker dying mid-attach must never tear the segment down: the
    resource tracker is shared across the spawn tree, so only coordinator
    unlink (or whole-tree death) removes the name."""
    store = _store(32)
    registry = shm.SegmentRegistry()
    try:
        segment_name, _ = _pack(registry, store)
        context = multiprocessing.get_context("spawn")
        ready = context.Event()
        child = context.Process(target=_attach_and_wait, args=(segment_name, ready))
        child.start()
        try:
            assert ready.wait(timeout=30), "attacher never reported ready"
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10)
        finally:
            if child.is_alive():  # pragma: no cover - cleanup path
                child.kill()
                child.join(timeout=5)
        assert segment_name in shm.list_segments()
        probe = shm.attach(segment_name)  # still attachable after the crash
        probe.close()
    finally:
        registry.close()
        store.close()
    assert shm.list_segments() == []


def _attach_and_wait(segment_name, ready):  # pragma: no cover - child process
    segment = shm.attach(segment_name)
    ready.set()
    time.sleep(60)  # parent SIGKILLs us long before this returns
    segment.close()


def test_worker_crash_injection_no_repack_no_leak(bsbm_small):
    """Respawn recovery is O(1): the re-ship sends the existing descriptor
    (zero new packs) and shutdown leaves /dev/shm clean."""
    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    coordinator = ClusterCoordinator(catalog, workers=2, heartbeat_seconds=0.2)
    try:
        assert coordinator.use_shm
        packs_before = coordinator.status()["shm"]["packs"]
        assert packs_before == 1
        victim = coordinator.status()["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        answer = coordinator.answer("g", query)  # forces respawn + re-ship
        assert answer.answers
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if all(w["alive"] for w in coordinator.status()["workers"]):
                break
            time.sleep(0.05)
        status = coordinator.status()
        assert all(w["alive"] for w in status["workers"])
        assert status["shm"]["packs"] == packs_before  # zero repack
        assert status["ship_metrics"]["reships"] >= 1
    finally:
        coordinator.close()
        catalog.close()
    assert shm.list_segments() == []


def test_drop_unlinks_segment(bsbm_small):
    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    coordinator = ClusterCoordinator(catalog, workers=2, heartbeat_seconds=0)
    try:
        assert len(shm.list_segments()) == 1
        coordinator.drop("g")
        assert shm.list_segments() == []
    finally:
        coordinator.close()
        catalog.close()


def test_coordinator_sigkill_tracker_backstop(tmp_path):
    """If the whole coordinator process dies by SIGKILL, the surviving
    resource tracker sweeps the named segments once the tree exits — the
    backstop behind the zero-leak guarantee."""
    script = tmp_path / "crash.py"
    script.write_text(
        textwrap.dedent(
            """
            import os, signal, sys
            from repro.cluster import protocol, shm
            from repro.store.memory import MemoryStore
            from repro.model.terms import URI
            from repro.model.triple import Triple

            store = MemoryStore()
            store.insert_triples(
                Triple(URI(f"http://x/s{i}"), URI("http://x/p"), URI(f"http://x/o{i}"))
                for i in range(64)
            )
            registry = shm.SegmentRegistry()
            name, _ = registry.pack(
                "g", 0,
                protocol.pack_term_chunks(store.dictionary),
                protocol.pack_all_shard_tables(store, 2),
                protocol.pack_full_tables(store),
                protocol.BYTEORDER,
            )
            print(name, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    segment_name = process.stdout.readline().strip()
    process.wait(timeout=30)
    assert segment_name.startswith(shm.SEGMENT_PREFIX)
    assert process.returncode == -signal.SIGKILL
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if segment_name not in shm.list_segments():
            return  # the tracker swept the leak
        time.sleep(0.1)
    raise AssertionError(f"{segment_name} leaked past coordinator SIGKILL")


class _PipeStub:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)

    def close(self):
        pass


def test_worker_attach_byteswaps_foreign_segments():
    """A segment packed on a foreign-endian coordinator cannot alias —
    the worker's adopt falls back to a byteswapping copy and still
    answers identically."""
    from array import array

    from repro.cluster.worker import TARGET_FULL, _Worker

    foreign = "big" if sys.byteorder == "little" else "little"

    def swap(tables):
        swapped = {}
        for kind_value, (count, s_bytes, p_bytes, o_bytes) in tables.items():
            out = [count]
            for blob in (s_bytes, p_bytes, o_bytes):
                column = array("q")
                column.frombytes(blob)
                column.byteswap()
                out.append(column.tobytes())
            swapped[kind_value] = tuple(out)
        return swapped

    store = _store(48)
    registry = shm.SegmentRegistry()
    worker = _Worker(_PipeStub(), {"shard_index": 0, "shard_count": 1})
    try:
        segment_name, directory = registry.pack(
            "g",
            0,
            protocol.pack_term_chunks(store.dictionary),
            [swap(tables) for tables in protocol.pack_all_shard_tables(store, 1)],
            swap(protocol.pack_full_tables(store)),
            foreign,
        )
        reply = worker.handle_load(
            ("g", 0, (protocol.TABLES_SHM, segment_name, directory), [])
        )
        assert reply["mode"] == "shm"
        assert reply["full_rows"] == store.count(TripleKind.DATA) + store.count(
            TripleKind.TYPE
        ) + store.count(TripleKind.SCHEMA)
        answer = worker.handle_query(
            ("g", 0, "SELECT ?s ?o WHERE { ?s <http://x/p0> ?o }", TARGET_FULL,
             None, False, False)
        )
        native = MemoryStore()
        native.insert_triples(
            Triple(URI(f"http://x/s{i % 9}"), URI(f"http://x/p{i % 3}"),
                   URI(f"http://x/o{i}"))
            for i in range(48)
        )
        expected = len(native.select_many(TripleKind.DATA, predicate=native.dictionary.encode_existing(URI("http://x/p0"))))
        assert len(answer["answers"]) == expected > 0
        # byteswapped columns are private copies, nothing adopted
        memory = worker.handle_ping(())["column_memory"]
        assert memory["adopted_bytes"] == 0 and memory["private_bytes"] > 0
        native.close()
    finally:
        worker.close()
        registry.close()
        store.close()
    assert shm.list_segments() == []
