"""Scatter-gather answering: bit-identical to the in-process service."""

import pytest

from repro.cluster import ClusterCoordinator
from repro.model.terms import URI
from repro.model.triple import Triple
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService


@pytest.fixture(scope="module")
def cluster_pair(bsbm_small):
    """A 3-worker cluster and a serial reference service over the same data."""
    catalog = GraphCatalog()
    catalog.register("bsbm", graph=bsbm_small)
    serial_catalog = GraphCatalog()
    serial_catalog.register("bsbm", graph=bsbm_small)
    service = QueryService(serial_catalog)
    coordinator = ClusterCoordinator(catalog, workers=3, heartbeat_seconds=0)
    yield coordinator, service, serial_catalog
    coordinator.close()
    catalog.close()
    serial_catalog.close()


def _sample_triple(graph):
    for triple in graph:
        return triple
    raise AssertionError("empty graph")


def test_workload_parity(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    queries = generate_rbgp_workload(bsbm_small, count=25, seed=13)
    scattered = 0
    for query in queries:
        serial = service.answer("bsbm", query)
        clustered = coordinator.answer("bsbm", query)
        assert clustered.answers == serial.answers, query.to_sparql()
        if clustered.cluster["mode"] == "scatter":
            scattered += 1
    # the workload must actually exercise the scatter path
    assert scattered > 0


def test_star_query_scatters(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    triple = _sample_triple(bsbm_small)
    query = parse_query(
        "SELECT ?s ?o WHERE { ?s <%s> ?o . ?s ?p ?x }" % triple.predicate.value
    )
    serial = service.answer("bsbm", query)
    clustered = coordinator.answer("bsbm", query)
    assert clustered.answers == serial.answers
    assert clustered.cluster["mode"] == "scatter"
    assert len(clustered.cluster["workers"]) == 3


def test_chain_query_routes_to_full_replica(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    query = parse_query("SELECT ?a ?c WHERE { ?a ?p ?b . ?b ?q ?c }")
    serial = service.answer("bsbm", query, limit=None)
    clustered = coordinator.answer("bsbm", query, limit=None)
    assert clustered.answers == serial.answers
    assert clustered.cluster["mode"] == "full"
    assert len(clustered.cluster["workers"]) == 1


def test_constant_subject_routes_to_owning_shard(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    triple = _sample_triple(bsbm_small)
    query = parse_query(
        "SELECT ?p ?o WHERE { <%s> ?p ?o }" % triple.subject.value
    )
    serial = service.answer("bsbm", query)
    clustered = coordinator.answer("bsbm", query)
    assert clustered.answers == serial.answers
    assert clustered.answers  # the subject exists: answers must be non-empty
    assert clustered.cluster["mode"] == "scatter"
    assert "routed_shard" in clustered.cluster
    assert len(clustered.cluster["workers"]) == 1


def test_unknown_constant_subject_is_empty(cluster_pair):
    coordinator, service, _ = cluster_pair
    query = parse_query("SELECT ?o WHERE { <http://nowhere/q> ?p ?o }")
    assert service.answer("bsbm", query).answers == set()
    clustered = coordinator.answer("bsbm", query)
    assert clustered.answers == set()


def test_boolean_query_parity(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    triple = _sample_triple(bsbm_small)
    sat = parse_query("ASK WHERE { ?s <%s> ?o }" % triple.predicate.value)
    unsat = parse_query("ASK WHERE { ?s <http://nowhere/p> ?o }")
    for query in (sat, unsat):
        assert (
            coordinator.answer("bsbm", query).answers
            == service.answer("bsbm", query).answers
        )


def test_pruned_query_reports_pruning(cluster_pair):
    coordinator, service, _ = cluster_pair
    query = parse_query(
        "SELECT ?s WHERE { ?s <http://nowhere/p> ?o . ?s <http://nowhere/q> ?x }"
    )
    serial = service.answer("bsbm", query)
    clustered = coordinator.answer("bsbm", query)
    assert clustered.answers == serial.answers == set()
    if serial.pruned:
        # every shard guard must refute what the global guard refutes
        assert clustered.pruned
        assert clustered.cluster["shards_pruned"] == len(
            clustered.cluster["workers"]
        )


def test_saturated_parity_uses_full_replica(cluster_pair, bsbm_small):
    coordinator, service, _ = cluster_pair
    queries = generate_rbgp_workload(bsbm_small, count=8, seed=29)
    for query in queries:
        serial = service.answer("bsbm", query, saturated=True)
        clustered = coordinator.answer("bsbm", query, saturated=True)
        assert clustered.answers == serial.answers
        assert clustered.cluster["mode"] == "full"


def test_limit_returns_answer_subset(cluster_pair):
    coordinator, service, _ = cluster_pair
    query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
    full = service.answer("bsbm", query, limit=None)
    limited = coordinator.answer("bsbm", query, limit=10)
    assert len(limited.answers) == 10
    assert limited.answers <= full.answers


def test_read_your_writes(cluster_pair):
    coordinator, service, serial_catalog = cluster_pair
    triples = [
        Triple(URI("http://ryw/s1"), URI("http://ryw/p"), URI("http://ryw/o1")),
        Triple(URI("http://ryw/s1"), URI("http://ryw/p"), URI("http://ryw/o2")),
    ]
    inserted = coordinator.add_triples("bsbm", triples)
    assert inserted == 2
    serial_catalog.add_triples("bsbm", triples)
    query = parse_query("SELECT ?o WHERE { <http://ryw/s1> <http://ryw/p> ?o }")
    clustered = coordinator.answer("bsbm", query)
    assert clustered.answers == service.answer("bsbm", query).answers
    assert len(clustered.answers) == 2


def test_register_and_drop_at_runtime(cluster_pair, fig2):
    coordinator, _, _ = cluster_pair
    coordinator.register("fig2", graph=fig2)
    query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
    answer = coordinator.answer("fig2", query, limit=None)
    assert len(answer.answers) > 0
    coordinator.drop("fig2")
    from repro.errors import UnknownGraphError

    with pytest.raises(UnknownGraphError):
        coordinator.answer("fig2", query)


def test_status_reports_workers(cluster_pair):
    coordinator, _, _ = cluster_pair
    status = coordinator.status()
    assert status["worker_count"] == 3
    assert len(status["workers"]) == 3
    for worker in status["workers"]:
        assert worker["alive"]
    assert "bsbm" in status["graphs"]
    assert status["service"]["queries"] > 0


def test_statistics_record_cluster_answers(cluster_pair):
    coordinator, _, _ = cluster_pair
    before = coordinator.statistics.queries
    query = parse_query("ASK WHERE { ?s ?p ?o }")
    coordinator.answer("bsbm", query)
    assert coordinator.statistics.queries == before + 1
