"""Shard extraction and the wire protocol: pure in-process tests."""

from array import array

import pytest

from repro.cluster import protocol
from repro.errors import ClusterError
from repro.model.dictionary import Dictionary
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import TripleKind
from repro.store.base import shard_of
from repro.store.memory import MemoryStore
from repro.store.reference import DictReferenceStore


def _unpack(blob):
    column = array("q")
    column.frombytes(blob)
    return list(column)


def _rows_of(part):
    count, s_bytes, p_bytes, o_bytes = part
    s_col, p_col, o_col = _unpack(s_bytes), _unpack(p_bytes), _unpack(o_bytes)
    assert count == len(s_col) == len(p_col) == len(o_col)
    return list(zip(s_col, p_col, o_col))


def test_shard_of_is_subject_modulo():
    assert shard_of(0, 4) == 0
    assert shard_of(7, 4) == 3
    assert shard_of(8, 4) == 0
    assert {shard_of(i, 3) for i in range(9)} == {0, 1, 2}


@pytest.mark.parametrize("store_cls", [MemoryStore, DictReferenceStore])
@pytest.mark.parametrize("shard_count", [1, 2, 5])
def test_partition_is_exact(bsbm_small, store_cls, shard_count):
    """Shards are disjoint, complete, and keyed by subject hash —
    on the columnar sorted-run override and the generic fallback alike."""
    store = store_cls()
    store.insert_triples(bsbm_small)
    for kind in (TripleKind.DATA, TripleKind.TYPE):
        whole = set()
        for batch in store.scan_batches(kind):
            whole.update(batch)
        parts = store.partition_column_bytes(kind, shard_count)
        assert len(parts) == shard_count
        union = []
        for index, part in enumerate(parts):
            rows = _rows_of(part)
            for subject, _p, _o in rows:
                assert subject % shard_count == index
            union.extend(rows)
        # disjoint + complete: the shards are a partition of the table
        assert len(union) == len(whole)
        assert set(union) == whole
    store.close()


def test_partition_backends_agree_as_multisets(bsbm_small):
    memory = MemoryStore()
    memory.insert_triples(bsbm_small)
    reference = DictReferenceStore()
    reference.insert_triples(bsbm_small)
    for kind in (TripleKind.DATA, TripleKind.TYPE):
        fast = memory.partition_column_bytes(kind, 3)
        slow = reference.partition_column_bytes(kind, 3)
        for fast_part, slow_part in zip(fast, slow):
            assert sorted(_rows_of(fast_part)) == sorted(_rows_of(slow_part))
    memory.close()
    reference.close()


def test_partition_rejects_bad_shard_count():
    store = MemoryStore()
    with pytest.raises(ValueError):
        store.partition_column_bytes(TripleKind.DATA, 0)
    store.close()


def test_pack_unpack_terms_round_trip():
    source = Dictionary()
    terms = [
        URI("http://example.org/a"),
        BlankNode("b0"),
        Literal("plain"),
        Literal("12", datatype=URI("http://www.w3.org/2001/XMLSchema#integer")),
        Literal("chat", language="en"),
        URI("http://example.org/b"),
    ]
    for term in terms:
        source.encode(term)
    packed = protocol.pack_terms(source)
    target = Dictionary()
    assert protocol.unpack_terms(packed, target) == len(source)
    for term in terms:
        assert target.encode_existing(term) == source.encode_existing(term)


def test_pack_terms_tail_only():
    source = Dictionary()
    source.encode(URI("http://example.org/a"))
    mark = len(source)
    source.encode(URI("http://example.org/b"))
    source.encode(Literal("x"))
    tail = protocol.pack_terms(source, mark)
    assert len(tail) == 2
    target = Dictionary()
    target.encode(URI("http://example.org/a"))
    protocol.unpack_terms(tail, target)
    assert target.encode_existing(Literal("x")) == source.encode_existing(Literal("x"))


def test_unpack_terms_detects_divergence():
    """A term that would land on the wrong id is an error, not a mis-key."""
    packed = [("u", "http://example.org/a", None, None)]
    target = Dictionary()
    target.encode(URI("http://example.org/a"))  # already present: id 0 != 1
    with pytest.raises(ClusterError):
        protocol.unpack_terms(packed, target)


def test_unpack_terms_rejects_unknown_kind():
    with pytest.raises(ClusterError):
        protocol.unpack_terms([("z", "x", None, None)], Dictionary())


def test_shard_rows_broadcasts_schema():
    rows = [
        ("data", 0, 10, 11),
        ("data", 1, 10, 12),
        ("type", 2, 0, 13),
        ("schema", 99, 5, 6),
    ]
    shard0 = protocol.shard_rows(rows, 0, 2)
    shard1 = protocol.shard_rows(rows, 1, 2)
    assert ("schema", 99, 5, 6) in shard0 and ("schema", 99, 5, 6) in shard1
    assert ("data", 0, 10, 11) in shard0 and ("data", 0, 10, 11) not in shard1
    assert ("data", 1, 10, 12) in shard1 and ("type", 2, 0, 13) in shard0


def test_pack_all_shard_tables_matches_single(bsbm_small):
    store = MemoryStore()
    store.insert_triples(bsbm_small)
    all_parts = protocol.pack_all_shard_tables(store, 3)
    for index in range(3):
        assert protocol.pack_shard_tables(store, index, 3) == all_parts[index]
    # schema is broadcast whole: identical blob in every shard
    schema_blobs = {parts[TripleKind.SCHEMA.value][1] for parts in all_parts}
    assert len(schema_blobs) == 1
    store.close()


def test_load_column_bytes_round_trip(bsbm_small):
    """Shipping = partition + load: the shards rebuild the exact table."""
    store = MemoryStore()
    store.insert_triples(bsbm_small)
    parts = protocol.pack_all_shard_tables(store, 2)
    whole = set()
    for batch in store.scan_batches(TripleKind.DATA):
        whole.update(batch)
    rebuilt = set()
    for part in parts:
        target = MemoryStore()
        target.dictionary = store.dictionary
        count, s_bytes, p_bytes, o_bytes = part[TripleKind.DATA.value]
        loaded = target.load_column_bytes(TripleKind.DATA, s_bytes, p_bytes, o_bytes)
        assert loaded == count
        for batch in target.scan_batches(TripleKind.DATA):
            rebuilt.update(batch)
    assert rebuilt == whole
    store.close()


def test_shard_rows_agrees_with_partition_column_bytes(bsbm_small):
    """The row router and the bulk partitioner must pin rows to the same
    shard — both go through ``shard_of`` — or a delta would land on a
    worker whose snapshot never held its subject."""
    store = MemoryStore()
    store.insert_triples(bsbm_small)
    shard_count = 3
    parts = store.partition_column_bytes(TripleKind.DATA, shard_count)
    wire_rows = [
        (TripleKind.DATA.value, s, p, o)
        for batch in store.scan_batches(TripleKind.DATA)
        for s, p, o in batch
    ]
    for index in range(shard_count):
        partitioned = set(_rows_of(parts[index]))
        routed = {
            (s, p, o)
            for _kind, s, p, o in protocol.shard_rows(wire_rows, index, shard_count)
        }
        assert routed == partitioned
        for subject, _p, _o in routed:
            assert shard_of(subject, shard_count) == index
    store.close()


def test_pack_term_chunks_round_trip():
    """Dictionary shipment is sliced into bounded chunks that reassemble,
    in order, into the exact same id assignment."""
    source = Dictionary()
    for i in range(150):
        source.encode(URI(f"http://example.org/term/{i}"))
    chunks = protocol.pack_term_chunks(source, chunk=64)
    assert [len(chunk) for chunk in chunks] == [64, 64, 22]
    target = Dictionary()
    assert protocol.unpack_term_chunks(chunks, target) == len(source)
    for i in (0, 63, 64, 149):
        term = URI(f"http://example.org/term/{i}")
        assert target.encode_existing(term) == source.encode_existing(term)


def test_pack_term_chunks_tail_only():
    """Delta shipment keeps the offset-tagged contract: chunks packed from
    a dictionary mark splice onto a target already holding the prefix."""
    source = Dictionary()
    source.encode(URI("http://example.org/a"))
    mark = len(source)
    for i in range(5):
        source.encode(URI(f"http://example.org/tail/{i}"))
    chunks = protocol.pack_term_chunks(source, start=mark, chunk=2)
    assert [len(chunk) for chunk in chunks] == [2, 2, 1]
    target = Dictionary()
    target.encode(URI("http://example.org/a"))
    protocol.unpack_term_chunks(chunks, target)
    probe = URI("http://example.org/tail/4")
    assert target.encode_existing(probe) == source.encode_existing(probe)


def test_pack_term_chunks_empty_and_bad_size():
    assert protocol.pack_term_chunks(Dictionary()) == []
    with pytest.raises(ClusterError):
        protocol.pack_term_chunks(Dictionary(), chunk=0)
