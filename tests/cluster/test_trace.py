"""Trace propagation across the coordinator→worker pipe.

One traced scatter-gather query must come back as a *single* span tree:
the coordinator's route/scatter/gather spans with each contacted worker's
guard/evaluate subtree grafted under ``worker-<index>`` — structurally the
same guard/evaluate pair the serial service produces.
"""

import pytest

from repro.cluster import ClusterCoordinator
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.telemetry import QueryTrace


@pytest.fixture(scope="module")
def traced_pair(bsbm_small):
    catalog = GraphCatalog()
    catalog.register("bsbm", graph=bsbm_small)
    serial_catalog = GraphCatalog()
    serial_catalog.register("bsbm", graph=bsbm_small)
    service = QueryService(serial_catalog)
    coordinator = ClusterCoordinator(catalog, workers=2, heartbeat_seconds=0)
    yield coordinator, service
    coordinator.close()
    catalog.close()
    serial_catalog.close()


def _scatter_query(graph):
    triple = next(iter(graph))
    return parse_query(
        "SELECT ?s ?o WHERE { ?s <%s> ?o . ?s ?p ?x }" % triple.predicate.value
    )


def test_untraced_query_has_no_span_tree(traced_pair, bsbm_small):
    coordinator, _service = traced_pair
    answer = coordinator.answer("bsbm", _scatter_query(bsbm_small))
    assert answer.query_trace is None


def test_cluster_trace_is_one_tree(traced_pair, bsbm_small):
    coordinator, _service = traced_pair
    query = _scatter_query(bsbm_small)
    answer = coordinator.answer("bsbm", query, trace=True)
    trace = answer.query_trace
    assert trace is not None and trace.trace_id
    assert answer.cluster["mode"] == "scatter"

    root = trace.root
    assert root.name == "query"
    stages = [child.name for child in root.children]
    assert stages == ["route", "scatter", "gather"]

    scatter = root.find("scatter")
    worker_spans = [child for child in scatter.children if child.name.startswith("worker-")]
    # every contacted worker contributed exactly one grafted subtree
    assert len(worker_spans) == len(answer.cluster["workers"]) == 2
    for span in worker_spans:
        (worker_query,) = span.children
        assert worker_query.name == "query"
        assert worker_query.find("guard") is not None
        assert worker_query.find("evaluate") is not None

    route = root.find("route")
    assert route.attributes["mode"] == "scatter"
    gather = root.find("gather")
    assert gather.attributes["answers"] == len(answer.answers)
    assert root.seconds > 0


def test_caller_supplied_trace_id_propagates(traced_pair, bsbm_small):
    coordinator, _service = traced_pair
    supplied = QueryTrace(trace_id="feedfacefeedface")
    answer = coordinator.answer(
        "bsbm", _scatter_query(bsbm_small), trace=supplied
    )
    assert answer.query_trace is supplied
    assert answer.query_trace.trace_id == "feedfacefeedface"
    # the workers only build a subtree when the id crossed the pipe
    assert answer.query_trace.root.find("worker-0") is not None


def test_worker_subtrees_match_the_serial_shape(traced_pair, bsbm_small):
    coordinator, service = traced_pair
    query = _scatter_query(bsbm_small)
    serial = service.answer("bsbm", query, trace=True)
    clustered = coordinator.answer("bsbm", query, trace=True)
    assert clustered.answers == serial.answers

    serial_stages = [child.name for child in serial.query_trace.root.children]
    assert serial_stages == ["guard", "evaluate"]
    scatter = clustered.query_trace.root.find("scatter")
    for span in scatter.children:
        if not span.name.startswith("worker-"):
            continue
        (worker_query,) = span.children
        assert [child.name for child in worker_query.children] == serial_stages


def test_routed_single_shard_query_still_traces(traced_pair, bsbm_small):
    coordinator, _service = traced_pair
    triple = next(iter(bsbm_small))
    query = parse_query("SELECT ?p ?o WHERE { <%s> ?p ?o }" % triple.subject.value)
    answer = coordinator.answer("bsbm", query, trace=True)
    trace = answer.query_trace
    assert trace is not None
    assert [child.name for child in trace.root.children] == [
        "route",
        "scatter",
        "gather",
    ]
    worker_spans = [
        span for span in trace.root.find("scatter").children
        if span.name.startswith("worker-")
    ]
    assert len(worker_spans) == len(answer.cluster["workers"])
