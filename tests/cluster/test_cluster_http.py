"""The HTTP front end over a cluster: same API, multi-process answers."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterCoordinator
from repro.io.ntriples import serialize_ntriples
from repro.queries.generator import generate_rbgp_workload
from repro.server.http import ServerApp, start_background
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService


def _post(url, payload, timeout=60):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(url, timeout=60):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def cluster_server(bsbm_small):
    catalog = GraphCatalog()
    catalog.register("g", graph=bsbm_small)
    serial_catalog = GraphCatalog()
    serial_catalog.register("g", graph=bsbm_small)
    service = QueryService(serial_catalog)
    cluster = ClusterCoordinator(catalog, workers=2, heartbeat_seconds=0)
    app = ServerApp(catalog, cluster=cluster)
    server, _thread = start_background(app)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service, serial_catalog
    server.shutdown()
    server.server_close()
    app.drain()
    app.close()
    catalog.close()
    serial_catalog.close()


def test_healthz_reports_cluster(cluster_server):
    base, _, _ = cluster_server
    payload = _get(base + "/healthz")
    assert payload["cluster"]["worker_count"] == 2
    assert payload["cluster"]["workers_alive"] == 2
    workers = payload["cluster"]["workers"]
    assert [worker["index"] for worker in workers] == [0, 1]
    for worker in workers:
        assert worker["alive"] is True
        # heartbeats are observational; with heartbeat_seconds=0 the age
        # may be null (no ping yet) but the key must be present
        assert "last_heartbeat_age_seconds" in worker


def test_cluster_endpoint(cluster_server):
    base, _, _ = cluster_server
    payload = _get(base + "/cluster")
    assert payload["worker_count"] == 2
    assert [worker["alive"] for worker in payload["workers"]] == [True, True]
    assert "g" in payload["graphs"]


def test_cluster_endpoint_404_without_cluster(bsbm_small):
    catalog = GraphCatalog()
    app = ServerApp(catalog)
    server, _thread = start_background(app)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/cluster")
        assert excinfo.value.code == 404
    finally:
        server.shutdown()
        server.server_close()
        app.close()
        catalog.close()


def test_query_parity_over_http(cluster_server, bsbm_small):
    base, service, _ = cluster_server
    for query in generate_rbgp_workload(bsbm_small, count=10, seed=41):
        serial = service.answer("g", query, limit=None)
        expected = sorted(
            [term.n3() for term in row] for row in serial.answers
        )
        payload = _post(base + "/graphs/g/query", {"query": query.to_sparql(), "limit": None})
        assert sorted(payload["answers"]) == expected
        assert "cluster" in payload  # scatter/full attribution rides along
        assert payload["cluster"]["mode"] in ("scatter", "full")


def test_ingest_then_query_over_http(cluster_server):
    base, _, _ = cluster_server
    triples = '<http://hc/s> <http://hc/p> <http://hc/o> .\n'
    ingest = _post(base + "/graphs/g/triples", {"triples": triples})
    assert ingest["inserted"] == 1
    payload = _post(
        base + "/graphs/g/query",
        {"query": "SELECT ?o WHERE { <http://hc/s> <http://hc/p> ?o }"},
    )
    assert payload["answers"] == [["<http://hc/o>"]]


def test_register_and_drop_over_http(cluster_server, fig2):
    base, _, _ = cluster_server
    created = _post(
        base + "/graphs", {"name": "fig2http", "triples": serialize_ntriples(fig2)}
    )
    assert created["triples"] == len(fig2)
    payload = _post(
        base + "/graphs/fig2http/query",
        {"query": "SELECT ?s ?o WHERE { ?s ?p ?o }", "limit": None},
    )
    assert payload["answer_count"] > 0
    request = urllib.request.Request(base + "/graphs/fig2http", method="DELETE")
    with urllib.request.urlopen(request, timeout=60) as response:
        assert json.loads(response.read())["dropped"] == "fig2http"
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(base + "/graphs/fig2http/query", {"query": "ASK WHERE { ?s ?p ?o }"})
    assert excinfo.value.code == 404
