"""Tests for the reader/writer lock behind the serving layer."""

import threading
from time import sleep

import pytest

from repro.utils.concurrency import ReadWriteLock


class TestReadWriteLock:
    def test_readers_overlap(self):
        lock = ReadWriteLock()
        barrier = threading.Barrier(4, timeout=10)
        overlapped = []

        def reader():
            with lock.read_locked():
                # every reader parks here until all four are inside the
                # critical section together — impossible unless the read
                # side is genuinely shared
                barrier.wait()
                overlapped.append(True)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert overlapped == [True] * 4

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        active = []
        errors = []

        def worker(side):
            try:
                manager = lock.write_locked() if side == "w" else lock.read_locked()
                with manager:
                    active.append(side)
                    if side == "w":
                        assert active == ["w"], f"writer overlapped: {active}"
                    sleep(0.002)
                    active.remove(side)
            except AssertionError as error:
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=("w" if i % 3 == 0 else "r",))
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order = []
        first_reader_in = threading.Event()
        writer_waiting = threading.Event()

        def long_reader():
            with lock.read_locked():
                first_reader_in.set()
                writer_waiting.wait(timeout=10)
                sleep(0.01)  # give the queued writer time to be first in line
                order.append("reader1")

        def writer():
            first_reader_in.wait(timeout=10)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(timeout=10)
            sleep(0.005)  # arrive after the writer queued
            with lock.read_locked():
                order.append("reader2")

        threads = [
            threading.Thread(target=long_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        # writer preference: the late reader must not sneak past the writer
        assert order.index("writer") < order.index("reader2")

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_write()
        lock.acquire_read()
        lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_read()
