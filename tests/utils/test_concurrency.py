"""Tests for the reader/writer lock behind the serving layer."""

import threading
from time import sleep

import pytest

from repro.utils.concurrency import ReadWriteLock


class TestReadWriteLock:
    def test_readers_overlap(self):
        lock = ReadWriteLock()
        barrier = threading.Barrier(4, timeout=10)
        overlapped = []

        def reader():
            with lock.read_locked():
                # every reader parks here until all four are inside the
                # critical section together — impossible unless the read
                # side is genuinely shared
                barrier.wait()
                overlapped.append(True)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert overlapped == [True] * 4

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        active = []
        errors = []

        def worker(side):
            try:
                manager = lock.write_locked() if side == "w" else lock.read_locked()
                with manager:
                    active.append(side)
                    if side == "w":
                        assert active == ["w"], f"writer overlapped: {active}"
                    sleep(0.002)
                    active.remove(side)
            except AssertionError as error:
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=("w" if i % 3 == 0 else "r",))
            for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        order = []
        first_reader_in = threading.Event()
        writer_waiting = threading.Event()

        def long_reader():
            with lock.read_locked():
                first_reader_in.set()
                writer_waiting.wait(timeout=10)
                sleep(0.01)  # give the queued writer time to be first in line
                order.append("reader1")

        def writer():
            first_reader_in.wait(timeout=10)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            writer_waiting.wait(timeout=10)
            sleep(0.005)  # arrive after the writer queued
            with lock.read_locked():
                order.append("reader2")

        threads = [
            threading.Thread(target=long_reader),
            threading.Thread(target=writer),
            threading.Thread(target=late_reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        # writer preference: the late reader must not sneak past the writer
        assert order.index("writer") < order.index("reader2")

    def test_unbalanced_releases_raise(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_write()
        lock.acquire_read()
        lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_read()

    def test_locked_for_read_and_write_introspection(self):
        lock = ReadWriteLock()
        assert not lock.locked_for_read()
        assert not lock.locked_for_write()
        with lock.read_locked():
            assert lock.locked_for_read()
            assert not lock.locked_for_write()
        with lock.write_locked():
            assert lock.locked_for_write()
            assert not lock.locked_for_read()
        assert not lock.locked_for_read()
        assert not lock.locked_for_write()

    def test_names_are_stable_and_unique(self):
        named = ReadWriteLock("entry.rwlock")
        assert named.name == "entry.rwlock"
        first, second = ReadWriteLock(), ReadWriteLock()
        assert first.name != second.name
        assert first.name in repr(first)

    def test_non_reentrancy_contract(self):
        """The docstring's warning, asserted: a reader re-acquiring the
        read side parks behind a waiting writer — the nested acquire the
        lock's contract forbids really does deadlock, it is not prose.
        """
        from repro.utils import lockcheck

        if lockcheck.get_installed_tracker() is not None:
            pytest.skip(
                "lockcheck rejects the nested acquire before it can park "
                "(covered by test_lockcheck.TestReentry)"
            )
        lock = ReadWriteLock()
        reader_in = threading.Event()
        reacquire_started = threading.Event()
        reacquired = threading.Event()

        def holder():
            lock.acquire_read()
            reader_in.set()
            # wait until a writer is queued, then try the forbidden
            # nested read acquire
            while not lock._writers_waiting:
                sleep(0.001)
            reacquire_started.set()
            lock.acquire_read()  # parks behind the waiting writer
            reacquired.set()
            # only the nested hold is ours to release: the main thread
            # released the first hold to break the deadlock
            lock.release_read()

        def writer():
            reader_in.wait(timeout=10)
            with lock.write_locked():
                pass

        holder_thread = threading.Thread(target=holder, daemon=True)
        writer_thread = threading.Thread(target=writer, daemon=True)
        holder_thread.start()
        writer_thread.start()
        assert reacquire_started.wait(timeout=10)
        # the nested acquire must NOT proceed: writer preference queues it
        # behind the writer, and the writer cannot run while the first
        # read hold is still out — the deadlock the contract describes
        assert not reacquired.wait(timeout=0.3)
        # break the cycle the only way possible: drop the first hold
        lock.release_read()
        assert reacquired.wait(timeout=10)
        writer_thread.join(timeout=10)
        holder_thread.join(timeout=10)
        assert not holder_thread.is_alive()
