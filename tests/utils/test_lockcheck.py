"""The dynamic lock-order sanitizer: cycles, re-entry, and the PR 7 shape."""

import os
import subprocess
import sys
import threading
import uuid

import pytest

from repro.utils import lockcheck
from repro.utils.concurrency import ReadWriteLock, named_lock


@pytest.fixture
def tracker():
    """Arm the sanitizer; leave it armed afterwards only if it already was.

    Lock names are uniquified per test, so edges this fixture records in a
    session-wide tracker (the REPRO_LOCKCHECK=1 CI run) cannot collide
    with the suite's own locks.
    """
    previously_installed = lockcheck.get_installed_tracker() is not None
    installed = lockcheck.install()
    yield installed
    if not previously_installed:
        lockcheck.uninstall()


def _name(label: str) -> str:
    return f"test.lockcheck.{label}.{uuid.uuid4().hex[:8]}"


class TestCycleDetection:
    def test_two_lock_cycle_raises_with_both_stacks(self, tracker):
        lock_a = lockcheck.TrackedLock(_name("a"))
        lock_b = lockcheck.TrackedLock(_name("b"))

        def establish_order():
            with lock_a:
                with lock_b:
                    pass

        thread = threading.Thread(target=establish_order, name="order-setter")
        thread.start()
        thread.join(timeout=10)

        with lock_b:
            with pytest.raises(lockcheck.PotentialDeadlockError) as excinfo:
                lock_a.acquire()
        error = excinfo.value
        assert error.cycle[0] == lock_b.name
        assert lock_a.name in error.cycle
        # both acquisition stacks travel with the report
        assert "acquire" in error.this_stack
        assert "establish_order" in error.other_stack
        # the rejected acquire never took the lock
        assert not lock_a.locked()

    def test_consistent_order_never_raises(self, tracker):
        lock_a = lockcheck.TrackedLock(_name("a"))
        lock_b = lockcheck.TrackedLock(_name("b"))
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert (lock_a.name, lock_b.name) in tracker.edges()

    def test_three_lock_transitive_cycle(self, tracker):
        names = [lockcheck.TrackedLock(_name(c)) for c in "abc"]
        a, b, c = names

        def run(first, second):
            with first:
                with second:
                    pass

        for first, second in ((a, b), (b, c)):
            thread = threading.Thread(target=run, args=(first, second))
            thread.start()
            thread.join(timeout=10)
        with c:
            with pytest.raises(lockcheck.PotentialDeadlockError):
                a.acquire()


class TestReentry:
    def test_rwlock_read_reentry_raises(self, tracker):
        rwlock = ReadWriteLock(_name("rwlock"))
        rwlock.acquire_read()
        try:
            with pytest.raises(lockcheck.PotentialDeadlockError) as excinfo:
                rwlock.acquire_read()
        finally:
            rwlock.release_read()
        error = excinfo.value
        assert error.cycle == [rwlock.name, rwlock.name]
        assert error.this_stack and error.other_stack

    def test_rwlock_write_after_read_reentry_raises(self, tracker):
        rwlock = ReadWriteLock(_name("rwlock"))
        with rwlock.read_locked():
            with pytest.raises(lockcheck.PotentialDeadlockError):
                rwlock.acquire_write()

    def test_plain_lock_reentry_raises(self, tracker):
        lock = lockcheck.TrackedLock(_name("plain"))
        with lock:
            with pytest.raises(lockcheck.PotentialDeadlockError):
                lock.acquire()

    def test_separate_readers_do_not_trip_reentry(self, tracker):
        rwlock = ReadWriteLock(_name("rwlock"))
        errors = []

        def reader():
            try:
                with rwlock.read_locked():
                    pass
            except lockcheck.PotentialDeadlockError as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors


class TestPr7RegressionShape:
    def test_ingest_vs_respawn_lock_cycle_is_flagged(self, tracker):
        """The PR 7 deadlock, reduced to its lock-order skeleton.

        Respawn/re-ship path: ship_lock → entry read lock (snapshot under
        the lock).  Buggy delta path: entry write lock (ingest) → ship_lock
        (synchronous fan-out).  Opposite orders — the sanitizer must
        reject the second edge instead of letting the two threads park
        against each other as they did in production.
        """
        entry_rwlock = ReadWriteLock(_name("pr7.entry.rwlock"))
        ship_lock = lockcheck.TrackedLock(_name("pr7.ship_lock"))

        def reship_path():
            with ship_lock:
                with entry_rwlock.read_locked():
                    pass  # snapshot the graph for the respawned worker

        thread = threading.Thread(target=reship_path, name="respawn-reship")
        thread.start()
        thread.join(timeout=10)

        # the pre-fix delta listener: runs inside the entry write lock and
        # then tries to take the ship lock to fan the delta out
        entry_rwlock.acquire_write()
        try:
            with pytest.raises(lockcheck.PotentialDeadlockError) as excinfo:
                ship_lock.acquire()
        finally:
            entry_rwlock.release_write()
        error = excinfo.value
        assert ship_lock.name in error.cycle
        assert entry_rwlock.name in error.cycle
        assert "respawn-reship" in str(error) or "reship_path" in error.other_stack


class TestWiring:
    def test_named_lock_is_plain_when_disarmed(self):
        if lockcheck.get_installed_tracker() is not None:
            pytest.skip("sanitizer armed for this session (REPRO_LOCKCHECK=1)")
        lock = named_lock("test.plain")
        assert isinstance(lock, type(threading.Lock()))

    def test_named_lock_is_tracked_when_armed(self, tracker):
        lock = named_lock(_name("armed"))
        assert isinstance(lock, lockcheck.TrackedLock)

    def test_install_is_idempotent(self, tracker):
        assert lockcheck.install() is tracker
        assert lockcheck.enabled()

    def test_env_var_arms_a_fresh_process(self):
        env = dict(os.environ, REPRO_LOCKCHECK="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        code = (
            "from repro.utils import concurrency, lockcheck\n"
            "assert concurrency.get_tracker() is not None\n"
            "assert lockcheck.enabled()\n"
            "print('armed')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "armed" in result.stdout

    def test_release_restores_order_freedom_within_thread(self, tracker):
        lock_a = lockcheck.TrackedLock(_name("a"))
        lock_b = lockcheck.TrackedLock(_name("b"))
        # sequential (non-nested) opposite-order use is a recorded edge
        # only when actually nested — no false positive here
        with lock_a:
            pass
        with lock_b:
            pass
        with lock_a:
            with lock_b:
                pass
        assert (lock_b.name, lock_a.name) not in tracker.edges()
