"""Tests for the timing helpers."""

from repro.utils.timing import Stopwatch, TimingLog, time_call


class TestStopwatch:
    def test_elapsed_non_negative(self):
        with Stopwatch() as watch:
            sum(range(100))
        assert watch.elapsed >= 0.0

    def test_lap_without_start(self):
        assert Stopwatch().lap() == 0.0

    def test_restart_resets(self):
        watch = Stopwatch()
        with watch:
            sum(range(100))
        watch.restart()
        assert watch.elapsed == 0.0
        assert watch.lap() >= 0.0


class TestTimingLog:
    def test_measure_returns_result(self):
        log = TimingLog()
        assert log.measure("work", lambda: 42) == 42
        assert len(log.records()) == 1

    def test_summary_aggregates_by_label(self):
        log = TimingLog()
        log.record("a", 1.0)
        log.record("a", 3.0)
        log.record("b", 2.0)
        summary = log.summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["total"] == 4.0
        assert summary["a"]["mean"] == 2.0
        assert summary["b"]["count"] == 1

    def test_records_returns_copy(self):
        log = TimingLog()
        log.record("a", 1.0)
        log.records().append(("b", 2.0))
        assert len(log.records()) == 1


def test_time_call():
    result, elapsed = time_call(lambda: "ok")
    assert result == "ok"
    assert elapsed >= 0.0
