"""Tests for the disjoint-set structure."""

from repro.utils.unionfind import UnionFind


class TestUnionFind:
    def test_singletons_after_add(self):
        union = UnionFind(["a", "b", "c"])
        assert union.set_count == 3
        assert not union.connected("a", "b")

    def test_add_duplicate_is_noop(self):
        union = UnionFind()
        assert union.add("a") is True
        assert union.add("a") is False
        assert len(union) == 1

    def test_union_merges_sets(self):
        union = UnionFind(["a", "b", "c"])
        union.union("a", "b")
        assert union.connected("a", "b")
        assert not union.connected("a", "c")
        assert union.set_count == 2

    def test_union_is_transitive(self):
        union = UnionFind()
        union.union("a", "b")
        union.union("b", "c")
        assert union.connected("a", "c")

    def test_find_registers_unknown_elements(self):
        union = UnionFind()
        assert union.find("x") == "x"
        assert "x" in union

    def test_union_idempotent(self):
        union = UnionFind(["a", "b"])
        union.union("a", "b")
        count = union.set_count
        union.union("a", "b")
        assert union.set_count == count

    def test_groups_partition_all_elements(self):
        union = UnionFind(range(10))
        for index in range(0, 10, 2):
            union.union(0, index)
        groups = union.groups()
        assert sum(len(group) for group in groups) == 10
        assert {0, 2, 4, 6, 8} in groups

    def test_group_of(self):
        union = UnionFind(["a", "b", "c"])
        union.union("a", "b")
        assert union.group_of("a") == {"a", "b"}
        assert union.group_of("missing") == set()

    def test_connected_unknown_elements(self):
        union = UnionFind(["a"])
        assert not union.connected("a", "zzz")

    def test_large_chain_stays_consistent(self):
        union = UnionFind(range(1000))
        for index in range(999):
            union.union(index, index + 1)
        assert union.set_count == 1
        assert union.connected(0, 999)
