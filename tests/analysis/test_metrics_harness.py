"""Tests for the metrics table and the Figure 11-13 scale-sweep harness."""

import pytest

from repro.analysis.harness import format_figure_series, run_scale_sweep
from repro.analysis.metrics import PAPER_KINDS, format_table, summary_size_table
from repro.datasets.bsbm import generate_bsbm


class TestSummarySizeTable:
    def test_one_row_per_kind(self, fig2):
        rows = summary_size_table(fig2)
        assert len(rows) == len(PAPER_KINDS)
        assert {row.kind for row in rows} == set(PAPER_KINDS)

    def test_row_fields_consistent(self, fig2):
        for row in summary_size_table(fig2):
            assert row.input_triples == len(fig2)
            assert row.all_nodes >= row.data_nodes
            assert row.all_edges >= row.data_edges
            assert 0 < row.edge_ratio <= 1.0
            assert row.build_seconds >= 0.0

    def test_unknown_kind_rejected(self, fig2):
        with pytest.raises(KeyError):
            summary_size_table(fig2, kinds=["bogus"])

    def test_format_table_contains_all_kinds(self, fig2):
        text = format_table(summary_size_table(fig2))
        for kind in PAPER_KINDS:
            assert kind in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)\n"

    def test_dataset_name_override(self, fig2):
        rows = summary_size_table(fig2, dataset_name="custom")
        assert all(row.dataset == "custom" for row in rows)


class TestScaleSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_scale_sweep(scales=(20, 40), seed=0)

    def test_rows_cover_scales_and_kinds(self, sweep):
        assert len(sweep.rows) == 2 * len(PAPER_KINDS)
        assert len(sweep.input_sizes()) == 2

    def test_series_shapes(self, sweep):
        node_series = sweep.series("all_nodes")
        assert set(node_series) == set(PAPER_KINDS)
        assert all(len(values) == 2 for values in node_series.values())

    def test_weak_close_to_strong_and_smaller_than_typed(self, sweep):
        # the paper's headline observation (Figures 11-12)
        nodes = sweep.series("data_nodes")
        for index in range(2):
            weak, strong = nodes["weak"][index], nodes["strong"][index]
            typed_weak = nodes["typed_weak"][index]
            assert strong <= 3 * weak
            assert typed_weak > weak

    def test_compression_below_paper_threshold(self, sweep):
        ratios = sweep.series("edge_ratio")
        for kind in PAPER_KINDS:
            assert all(value < 0.5 for value in ratios[kind])

    def test_custom_generator(self):
        result = run_scale_sweep(
            scales=(10,), generator=lambda scale: generate_bsbm(scale=scale, seed=1), kinds=("weak",)
        )
        assert len(result.rows) == 1

    def test_format_figure_series(self, sweep):
        text = format_figure_series(sweep, "all_nodes", "Figure 11")
        assert "Figure 11" in text
        assert "weak" in text and "typed_strong" in text
