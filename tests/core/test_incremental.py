"""Tests for the store-driven incremental weak summarizer (Algorithms 1-3)."""

import pytest

from repro.core.builders import weak_summary
from repro.core.incremental import IncrementalWeakSummarizer, incremental_weak_summary
from repro.core.isomorphism import graphs_isomorphic
from repro.core.properties import has_unique_data_properties
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


def _store_with(graph, backend):
    store = backend()
    store.load_graph(graph)
    return store


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


class TestEquivalenceWithQuotientConstruction:
    def test_fig2(self, fig2, backend):
        with _store_with(fig2, backend) as store:
            incremental = incremental_weak_summary(store)
        declarative = weak_summary(fig2)
        assert graphs_isomorphic(incremental.graph, declarative.graph)

    def test_bsbm(self, bsbm_small, backend):
        with _store_with(bsbm_small, backend) as store:
            incremental = incremental_weak_summary(store)
        declarative = weak_summary(bsbm_small)
        assert len(incremental.graph) == len(declarative.graph)
        assert graphs_isomorphic(incremental.graph, declarative.graph)

    def test_bibliography(self, bibliography_small, backend):
        with _store_with(bibliography_small, backend) as store:
            incremental = incremental_weak_summary(store)
        declarative = weak_summary(bibliography_small)
        assert graphs_isomorphic(incremental.graph, declarative.graph)

    def test_book_graph_schema_copied(self, book_graph, backend):
        with _store_with(book_graph, backend) as store:
            incremental = incremental_weak_summary(store)
        assert incremental.graph.schema_triples == book_graph.schema_triples


class TestAlgorithmInvariants:
    def test_unique_data_properties(self, bsbm_small):
        with _store_with(bsbm_small, MemoryStore) as store:
            summary = incremental_weak_summary(store)
        assert has_unique_data_properties(summary)

    def test_every_data_node_represented(self, fig2):
        with _store_with(fig2, MemoryStore) as store:
            summary = incremental_weak_summary(store)
        for node in fig2.data_nodes():
            assert summary.representative(node) is not None

    def test_typed_only_resources_share_one_node(self, fig2):
        from repro.datasets.sample import FIG2

        with _store_with(fig2, MemoryStore) as store:
            summary = incremental_weak_summary(store)
        ntau = summary.representative(FIG2.r6)
        assert summary.graph.types_of(ntau) == {FIG2.Spec}

    def test_merge_keeps_node_with_more_edges(self):
        # white-box check of MERGEDATANODES' union-by-size behaviour
        summarizer = IncrementalWeakSummarizer(MemoryStore())
        big = summarizer._create_data_node(resource=1)
        small = summarizer._create_data_node(resource=2)
        summarizer.src_dps[big] = {10, 11}
        summarizer.dp_src[10] = big
        summarizer.dp_src[11] = big
        summarizer.dtp[10] = (big, 10, small)
        summarizer.dtp[11] = (big, 11, small)
        summarizer.targ_dps[small] = {10, 11}
        summarizer.dp_targ[10] = small
        summarizer.dp_targ[11] = small
        kept = summarizer._merge_data_nodes(big, small)
        assert kept == big
        assert summarizer.rd[2] == big

    def test_idempotent_on_empty_store(self):
        with MemoryStore() as store:
            summary = incremental_weak_summary(store)
        assert len(summary.graph) == 0


class TestOnlineIngestion:
    """ingest_data / ingest_type in arbitrary arrival order + snapshot."""

    def _ingest_shuffled(self, graph, seed):
        import random

        store = MemoryStore()
        rows = store.insert_triples(sorted(graph))
        random.Random(seed).shuffle(rows)
        summarizer = IncrementalWeakSummarizer(store)
        summarizer.ingest_rows(rows)
        return summarizer

    def test_snapshot_matches_batch_build_any_order(self, fig2):
        declarative = weak_summary(fig2)
        for seed in (0, 5, 9):
            summarizer = self._ingest_shuffled(fig2, seed)
            assert graphs_isomorphic(summarizer.snapshot().graph, declarative.graph)

    def test_types_before_data_promotes_resources(self, fig2):
        # feed every type row first, then the data rows: resources first
        # parked in the typed-only buffer must end on proper data nodes
        store = MemoryStore()
        rows = store.insert_triples(sorted(fig2))
        types_first = [r for r in rows if r[0].name == "TYPE"] + [
            r for r in rows if r[0].name != "TYPE"
        ]
        summarizer = IncrementalWeakSummarizer(store)
        summarizer.ingest_rows(types_first)
        declarative = weak_summary(fig2)
        assert graphs_isomorphic(summarizer.snapshot().graph, declarative.graph)

    def test_snapshot_does_not_mutate_state(self, bibliography_small):
        store = MemoryStore()
        rows = store.insert_triples(sorted(bibliography_small))
        summarizer = IncrementalWeakSummarizer(store)
        half = len(rows) // 2
        summarizer.ingest_rows(rows[:half])
        first = summarizer.snapshot()
        assert graphs_isomorphic(summarizer.snapshot().graph, first.graph)
        summarizer.ingest_rows(rows[half:])
        declarative = weak_summary(bibliography_small)
        assert graphs_isomorphic(summarizer.snapshot().graph, declarative.graph)
