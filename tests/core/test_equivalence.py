"""Tests for the node equivalence relations (Definitions 7, 8, 13, 16)."""

from repro.core.equivalence import (
    strong_partition,
    type_partition,
    untyped_strong_partition,
    untyped_weak_partition,
    weak_partition,
)
from repro.datasets.sample import FIG2
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple


class TestWeakPartition:
    def test_publications_are_weakly_equivalent(self, fig2):
        partition = weak_partition(fig2)
        for resource in (FIG2.r2, FIG2.r3, FIG2.r4, FIG2.r5):
            assert partition.equivalent(FIG2.r1, resource)

    def test_titles_are_weakly_equivalent(self, fig2):
        partition = weak_partition(fig2)
        assert partition.equivalent(FIG2.t1, FIG2.t2)
        assert partition.equivalent(FIG2.t1, FIG2.t4)

    def test_authors_grouped(self, fig2):
        partition = weak_partition(fig2)
        assert partition.equivalent(FIG2.a1, FIG2.a2)

    def test_editors_grouped(self, fig2):
        partition = weak_partition(fig2)
        assert partition.equivalent(FIG2.e1, FIG2.e2)

    def test_authors_not_equivalent_to_titles(self, fig2):
        partition = weak_partition(fig2)
        assert not partition.equivalent(FIG2.a1, FIG2.t1)

    def test_block_count_matches_figure4(self, fig2):
        # N^{a,t,e,c}_{r,p}, N_a^r, N_t, N_e^p, N_c, Nτ  -> 6 blocks
        partition = weak_partition(fig2)
        assert len(partition) == 6

    def test_typed_only_node_in_empty_block(self, fig2):
        partition = weak_partition(fig2)
        assert partition.key_of(FIG2.r6) == (frozenset(), frozenset())

    def test_strong_implies_weak(self, fig2):
        weak = weak_partition(fig2)
        strong = strong_partition(fig2)
        nodes = list(fig2.data_nodes())
        for first in nodes:
            for second in nodes:
                if strong.equivalent(first, second):
                    assert weak.equivalent(first, second)

    def test_partition_is_valid(self, fig2):
        assert weak_partition(fig2).is_valid_partition()

    def test_chain_relatedness_through_shared_clique(self):
        # x1 -p-> y, x2 -p-> y2, x2 -q-> z : x1 and x2 share source clique {p,q}
        graph = RDFGraph(
            [
                Triple(EX.x1, EX.p, EX.y1),
                Triple(EX.x2, EX.p, EX.y2),
                Triple(EX.x2, EX.q, EX.z),
            ]
        )
        partition = weak_partition(graph)
        assert partition.equivalent(EX.x1, EX.x2)


class TestStrongPartition:
    def test_r4_separated_from_other_publications(self, fig2):
        partition = strong_partition(fig2)
        assert not partition.equivalent(FIG2.r1, FIG2.r4)

    def test_r1_r2_r3_r5_together(self, fig2):
        partition = strong_partition(fig2)
        for resource in (FIG2.r2, FIG2.r3, FIG2.r5):
            assert partition.equivalent(FIG2.r1, resource)

    def test_a1_and_a2_separated(self, fig2):
        # a1 has source clique {reviewed}, a2 has none
        partition = strong_partition(fig2)
        assert not partition.equivalent(FIG2.a1, FIG2.a2)

    def test_e1_and_e2_separated(self, fig2):
        partition = strong_partition(fig2)
        assert not partition.equivalent(FIG2.e1, FIG2.e2)

    def test_titles_still_grouped(self, fig2):
        partition = strong_partition(fig2)
        assert partition.equivalent(FIG2.t1, FIG2.t3)

    def test_block_count_matches_figure9(self, fig2):
        # Na,t,e,c ; Na,t,e,c/r,p ; Nar ; Na ; Nt ; Npe ; Ne ; Nc ; Nτ -> 9
        partition = strong_partition(fig2)
        assert len(partition) == 9

    def test_strong_key_is_clique_pair(self, fig2):
        partition = strong_partition(fig2)
        target, source = partition.key_of(FIG2.r4)
        assert {p.local_name for p in target} == {"reviewed", "published"}
        assert {p.local_name for p in source} == {"author", "title", "editor", "comment"}


class TestTypePartition:
    def test_same_type_sets_grouped(self, fig2):
        partition = type_partition(fig2)
        assert partition.equivalent(FIG2.r1, FIG2.r2)

    def test_different_types_separated(self, fig2):
        partition = type_partition(fig2)
        assert not partition.equivalent(FIG2.r1, FIG2.r3)

    def test_untyped_nodes_are_singletons(self, fig2):
        partition = type_partition(fig2)
        assert not partition.equivalent(FIG2.r4, FIG2.r5)
        assert not partition.equivalent(FIG2.t1, FIG2.t2)

    def test_multi_type_resource(self):
        graph = RDFGraph(
            [
                Triple(EX.x, RDF_TYPE, EX.A),
                Triple(EX.x, RDF_TYPE, EX.B),
                Triple(EX.y, RDF_TYPE, EX.A),
                Triple(EX.y, RDF_TYPE, EX.B),
                Triple(EX.z, RDF_TYPE, EX.A),
            ]
        )
        partition = type_partition(graph)
        assert partition.equivalent(EX.x, EX.y)
        assert not partition.equivalent(EX.x, EX.z)


class TestUntypedPartitions:
    def test_typed_nodes_grouped_by_type_set(self, fig2):
        for partition in (untyped_weak_partition(fig2), untyped_strong_partition(fig2)):
            assert partition.equivalent(FIG2.r1, FIG2.r2)   # both Book
            assert not partition.equivalent(FIG2.r1, FIG2.r3)  # Book vs Journal

    def test_untyped_nodes_merged_weakly(self, fig2):
        partition = untyped_weak_partition(fig2)
        assert partition.equivalent(FIG2.r4, FIG2.r5)

    def test_untyped_nodes_strong_separation(self, fig2):
        partition = untyped_strong_partition(fig2)
        # r4 has target clique {reviewed, published}, r5 has none
        assert not partition.equivalent(FIG2.r4, FIG2.r5)

    def test_typed_never_merged_with_untyped(self, fig2):
        partition = untyped_weak_partition(fig2)
        assert not partition.equivalent(FIG2.r1, FIG2.r4)

    def test_every_data_node_partitioned(self, fig2):
        partition = untyped_weak_partition(fig2)
        assert set(partition.block_of) == fig2.data_nodes()
