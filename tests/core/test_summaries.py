"""Tests for the four summaries on the paper's Figure 2 graph.

The expected node and edge counts come from Figures 4 (weak), 6 (type-based),
7 (typed weak / typed strong) and 9 (strong).
"""

import pytest

from repro.core.builders import (
    strong_summary,
    summarize,
    type_summary,
    typed_strong_summary,
    typed_weak_summary,
    weak_summary,
)
from repro.core.properties import summary_homomorphism_holds
from repro.datasets.sample import FIG2
from repro.errors import UnknownSummaryKindError
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Literal


class TestWeakSummaryFigure4:
    def test_data_node_count(self, fig2):
        summary = weak_summary(fig2)
        # N^{a,t,e,c}_{r,p}, N^r_a, N_t, N^p_e, N_c, Nτ
        assert len(summary.summary_data_nodes()) == 6

    def test_data_edge_count_is_distinct_property_count(self, fig2):
        summary = weak_summary(fig2)
        assert len(summary.graph.data_triples) == len(fig2.data_properties()) == 6

    def test_type_edges(self, fig2):
        summary = weak_summary(fig2)
        # big node τ Book, big node τ Journal, Nτ τ Spec
        assert len(summary.graph.type_triples) == 3

    def test_total_size_matches_figure4(self, fig2):
        statistics = weak_summary(fig2).statistics()
        assert statistics.all_node_count == 9   # 6 data + 3 class nodes
        assert statistics.all_edge_count == 9   # 6 data + 3 type edges

    def test_publications_share_representative(self, fig2):
        summary = weak_summary(fig2)
        representatives = {summary.representative(FIG2.term(f"r{i}")) for i in range(1, 6)}
        assert len(representatives) == 1

    def test_typed_only_node_gets_ntau(self, fig2):
        summary = weak_summary(fig2)
        ntau = summary.representative(FIG2.r6)
        assert ntau is not None
        assert summary.extent(ntau) == {FIG2.r6}
        assert summary.graph.types_of(ntau) == {FIG2.Spec}

    def test_literals_do_not_survive(self, fig2, book_graph):
        for graph in (fig2, book_graph):
            summary = weak_summary(graph)
            assert summary.graph.literals() == set()

    def test_homomorphism(self, fig2):
        assert summary_homomorphism_holds(fig2, weak_summary(fig2))

    def test_reviewed_and_published_point_to_big_node(self, fig2):
        summary = weak_summary(fig2)
        big = summary.representative(FIG2.r1)
        reviewed_edges = list(summary.graph.triples(predicate=FIG2.reviewed))
        published_edges = list(summary.graph.triples(predicate=FIG2.published))
        assert len(reviewed_edges) == 1 and reviewed_edges[0].object == big
        assert len(published_edges) == 1 and published_edges[0].object == big


class TestStrongSummaryFigure9:
    def test_data_node_count(self, fig2):
        summary = strong_summary(fig2)
        # Na,t,e,c ; Na,t,e,c/r,p ; Nar ; Na ; Nt ; Npe ; Ne ; Nc ; Nτ
        assert len(summary.summary_data_nodes()) == 9

    def test_r4_split_from_other_publications(self, fig2):
        summary = strong_summary(fig2)
        assert summary.representative(FIG2.r4) != summary.representative(FIG2.r1)

    def test_duplicate_property_labels_allowed(self, fig2):
        summary = strong_summary(fig2)
        author_edges = list(summary.graph.triples(predicate=FIG2.author))
        assert len(author_edges) == 2  # one from each of the two publication nodes

    def test_total_size(self, fig2):
        statistics = strong_summary(fig2).statistics()
        assert statistics.all_node_count == 12
        assert statistics.all_edge_count == 12

    def test_strong_refines_weak(self, fig2):
        weak = weak_summary(fig2)
        strong = strong_summary(fig2)
        assert len(strong.summary_data_nodes()) >= len(weak.summary_data_nodes())
        assert len(strong.graph) >= len(weak.graph)

    def test_homomorphism(self, fig2):
        assert summary_homomorphism_holds(fig2, strong_summary(fig2))


class TestTypeSummaryFigure6:
    def test_typed_resources_grouped_by_class_set(self, fig2):
        summary = type_summary(fig2)
        assert summary.representative(FIG2.r1) == summary.representative(FIG2.r2)
        assert summary.representative(FIG2.r1) != summary.representative(FIG2.r3)

    def test_untyped_resources_copied(self, fig2):
        summary = type_summary(fig2)
        untyped = [FIG2.r4, FIG2.r5, FIG2.t1, FIG2.t2, FIG2.a1]
        representatives = {summary.representative(node) for node in untyped}
        assert len(representatives) == len(untyped)

    def test_type_summary_keeps_all_data_edges_of_untyped_pairs(self, fig2):
        summary = type_summary(fig2)
        # every distinct (block(s), p, block(o)) survives; with most nodes
        # copied the data-edge count stays close to the input's 12
        assert len(summary.graph.data_triples) >= 10

    def test_homomorphism(self, fig2):
        assert summary_homomorphism_holds(fig2, type_summary(fig2))


class TestTypedSummariesFigure7:
    def test_typed_strong_refines_typed_weak_on_fig2(self, fig2):
        # Section 5.2 states TW and TS behave identically on typed resources
        # and differ on untyped ones exactly as weak differs from strong.
        # (On our reconstruction of Figure 2 the untyped resources r4 and r5
        # are weakly but not strongly equivalent, so TS is a refinement of
        # TW rather than identical to it.)
        weak_stats = typed_weak_summary(fig2).statistics()
        strong_stats = typed_strong_summary(fig2).statistics()
        assert strong_stats.all_node_count >= weak_stats.all_node_count
        assert strong_stats.all_edge_count >= weak_stats.all_edge_count

    def test_typed_summaries_agree_on_typed_resources(self, fig2):
        weak = typed_weak_summary(fig2)
        strong = typed_strong_summary(fig2)
        typed_resources = fig2.typed_resources()
        for first in typed_resources:
            for second in typed_resources:
                same_in_weak = weak.representative(first) == weak.representative(second)
                same_in_strong = strong.representative(first) == strong.representative(second)
                assert same_in_weak == same_in_strong

    def test_distinct_type_sets_get_distinct_nodes(self, fig2):
        summary = typed_weak_summary(fig2)
        book_node = summary.representative(FIG2.r1)
        journal_node = summary.representative(FIG2.r3)
        spec_node = summary.representative(FIG2.r6)
        assert len({book_node, journal_node, spec_node}) == 3

    def test_untyped_publications_merged_in_typed_weak(self, fig2):
        summary = typed_weak_summary(fig2)
        assert summary.representative(FIG2.r4) == summary.representative(FIG2.r5)

    def test_untyped_publications_split_in_typed_strong(self, fig2):
        summary = typed_strong_summary(fig2)
        assert summary.representative(FIG2.r4) != summary.representative(FIG2.r5)

    def test_typed_weak_larger_than_weak(self, fig2):
        assert len(typed_weak_summary(fig2).graph) > len(weak_summary(fig2).graph)

    def test_homomorphism(self, fig2):
        assert summary_homomorphism_holds(fig2, typed_weak_summary(fig2))
        assert summary_homomorphism_holds(fig2, typed_strong_summary(fig2))


class TestSchemaHandling:
    def test_schema_triples_copied_verbatim(self, book_graph):
        for kind in ("weak", "strong", "type", "typed_weak", "typed_strong"):
            summary = summarize(book_graph, kind)
            assert summary.graph.schema_triples == book_graph.schema_triples


class TestSummarizeFacade:
    def test_aliases(self, fig2):
        assert summarize(fig2, "w").kind == "weak"
        assert summarize(fig2, "TS").kind == "typed_strong"
        assert summarize(fig2, "typed-weak").kind == "typed_weak"

    def test_unknown_kind_raises(self, fig2):
        with pytest.raises(UnknownSummaryKindError):
            summarize(fig2, "bogus")

    def test_summary_repr_and_statistics(self, fig2):
        summary = summarize(fig2, "weak")
        assert "weak" in repr(summary)
        report = summary.compression_report()
        assert report["edge_ratio"] <= 1.0
        assert report["input_edges"] == len(fig2)

    def test_empty_graph_summarizes_to_empty_summary(self):
        from repro.model.graph import RDFGraph

        summary = summarize(RDFGraph(), "weak")
        assert len(summary.graph) == 0
        assert summary.summary_data_nodes() == set()
