"""Tests for graph equality up to summary-node renaming."""

from repro.core.builders import weak_summary
from repro.core.isomorphism import canonical_signature, graphs_isomorphic, summaries_equivalent
from repro.core.naming import SUMMARY_NS
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import BlankNode
from repro.model.triple import Triple


def _summary_node(name):
    return SUMMARY_NS.term(name)


class TestGraphsIsomorphic:
    def test_identical_graphs(self, fig2):
        assert graphs_isomorphic(fig2, fig2.copy())

    def test_renamed_summary_nodes_are_isomorphic(self):
        first = RDFGraph(
            [
                Triple(_summary_node("A"), EX.p, _summary_node("B")),
                Triple(_summary_node("A"), RDF_TYPE, EX.Book),
            ]
        )
        second = RDFGraph(
            [
                Triple(_summary_node("X"), EX.p, _summary_node("Y")),
                Triple(_summary_node("X"), RDF_TYPE, EX.Book),
            ]
        )
        assert graphs_isomorphic(first, second)

    def test_fixed_uris_must_match_exactly(self):
        first = RDFGraph([Triple(EX.a, EX.p, EX.b)])
        second = RDFGraph([Triple(EX.a, EX.p, EX.c)])
        assert not graphs_isomorphic(first, second)

    def test_different_sizes_not_isomorphic(self):
        first = RDFGraph([Triple(_summary_node("A"), EX.p, _summary_node("B"))])
        second = RDFGraph(
            [
                Triple(_summary_node("A"), EX.p, _summary_node("B")),
                Triple(_summary_node("B"), EX.p, _summary_node("A")),
            ]
        )
        assert not graphs_isomorphic(first, second)

    def test_structure_difference_detected(self):
        # chain vs fork with the same edge labels and sizes
        chain = RDFGraph(
            [
                Triple(_summary_node("A"), EX.p, _summary_node("B")),
                Triple(_summary_node("B"), EX.p, _summary_node("C")),
            ]
        )
        fork = RDFGraph(
            [
                Triple(_summary_node("A"), EX.p, _summary_node("B")),
                Triple(_summary_node("A"), EX.p, _summary_node("C")),
            ]
        )
        assert not graphs_isomorphic(chain, fork)

    def test_blank_nodes_are_renameable(self):
        first = RDFGraph([Triple(BlankNode("x"), EX.p, EX.a)])
        second = RDFGraph([Triple(BlankNode("y"), EX.p, EX.a)])
        assert graphs_isomorphic(first, second)

    def test_symmetric_nodes_requiring_backtracking(self):
        # two interchangeable nodes with identical neighbourhoods
        first = RDFGraph(
            [
                Triple(_summary_node("A"), EX.p, _summary_node("C")),
                Triple(_summary_node("B"), EX.p, _summary_node("C")),
            ]
        )
        second = RDFGraph(
            [
                Triple(_summary_node("X"), EX.p, _summary_node("Z")),
                Triple(_summary_node("Y"), EX.p, _summary_node("Z")),
            ]
        )
        assert graphs_isomorphic(first, second)

    def test_empty_graphs(self):
        assert graphs_isomorphic(RDFGraph(), RDFGraph())


class TestCanonicalSignature:
    def test_signature_invariant_under_renaming(self):
        first = RDFGraph([Triple(_summary_node("A"), EX.p, _summary_node("B"))])
        second = RDFGraph([Triple(_summary_node("Other"), EX.p, _summary_node("Name"))])
        assert canonical_signature(first) == canonical_signature(second)

    def test_signature_differs_for_different_structure(self):
        first = RDFGraph([Triple(_summary_node("A"), EX.p, _summary_node("B"))])
        second = RDFGraph([Triple(_summary_node("A"), EX.q, _summary_node("B"))])
        assert canonical_signature(first) != canonical_signature(second)


class TestSummariesEquivalent:
    def test_same_graph_two_runs(self, bsbm_small):
        assert summaries_equivalent(weak_summary(bsbm_small), weak_summary(bsbm_small))

    def test_different_kinds_not_equivalent(self, fig2):
        from repro.core.builders import strong_summary

        assert not summaries_equivalent(weak_summary(fig2), strong_summary(fig2))
