"""Tests for the completeness shortcuts (Propositions 5, 7, 8, 10)."""

from repro.core.isomorphism import graphs_isomorphic
from repro.core.shortcuts import (
    completeness_holds,
    direct_summary_of_saturation,
    shortcut_summary,
)
from repro.datasets.random_graph import RandomGraphConfig, generate_random_graph
from repro.schema.saturation import saturate


class TestWeakCompleteness:
    """Proposition 5: W(G∞) = W((W_G)∞)."""

    def test_figure5_graph(self, fig5_graph):
        comparison = completeness_holds(fig5_graph, "weak")
        assert comparison.equivalent

    def test_figure10_graph_weak(self, fig10_graph):
        assert completeness_holds(fig10_graph, "weak").equivalent

    def test_book_example(self, book_graph):
        assert completeness_holds(book_graph, "weak").equivalent

    def test_lubm(self, lubm_small):
        assert completeness_holds(lubm_small, "weak").equivalent

    def test_bibliography(self, bibliography_small):
        assert completeness_holds(bibliography_small, "weak").equivalent

    def test_random_graphs_with_schema(self):
        for seed in range(4):
            graph = generate_random_graph(
                RandomGraphConfig(resources=20, properties=6, data_triples=40, schema_constraints=5),
                seed=seed,
            )
            assert completeness_holds(graph, "weak").equivalent, seed

    def test_schema_less_graph_trivially_complete(self, fig2):
        assert completeness_holds(fig2, "weak").equivalent


class TestStrongCompleteness:
    """Proposition 8: S(G∞) = S((S_G)∞)."""

    def test_figure10_graph(self, fig10_graph):
        comparison = completeness_holds(fig10_graph, "strong")
        assert comparison.equivalent

    def test_figure5_graph(self, fig5_graph):
        assert completeness_holds(fig5_graph, "strong").equivalent

    def test_book_example(self, book_graph):
        assert completeness_holds(book_graph, "strong").equivalent

    def test_bibliography(self, bibliography_small):
        assert completeness_holds(bibliography_small, "strong").equivalent

    def test_random_graphs_with_schema(self):
        for seed in range(4):
            graph = generate_random_graph(
                RandomGraphConfig(resources=20, properties=6, data_triples=40, schema_constraints=5),
                seed=seed + 100,
            )
            assert completeness_holds(graph, "strong").equivalent, seed


class TestTypedNonCompleteness:
    """Propositions 7 and 10: counter-examples exist for the typed kinds."""

    def test_figure8_typed_weak_counterexample(self, fig8_graph):
        comparison = completeness_holds(fig8_graph, "typed_weak")
        assert not comparison.equivalent

    def test_figure8_typed_strong_counterexample(self, fig8_graph):
        comparison = completeness_holds(fig8_graph, "typed_strong")
        assert not comparison.equivalent

    def test_figure8_weak_still_complete(self, fig8_graph):
        # the same graph is fine for the untyped summaries
        assert completeness_holds(fig8_graph, "weak").equivalent

    def test_counterexample_direct_has_more_nodes(self, fig8_graph):
        comparison = completeness_holds(fig8_graph, "typed_weak")
        direct_nodes = len(comparison.direct.summary_data_nodes())
        shortcut_nodes = len(comparison.shortcut.summary_data_nodes())
        assert direct_nodes != shortcut_nodes


class TestShortcutMechanics:
    def test_shortcut_equals_direct_structurally(self, fig10_graph):
        direct = direct_summary_of_saturation(fig10_graph, "strong")
        shortcut = shortcut_summary(fig10_graph, "strong")
        assert graphs_isomorphic(direct.graph, shortcut.graph)

    def test_shortcut_summarizes_much_smaller_graph(self, lubm_small):
        # the point of the shortcut: the graph saturated in step 2 is the
        # summary, which is far smaller than G
        from repro.core.builders import weak_summary

        summary = weak_summary(lubm_small)
        assert len(summary.graph) < len(lubm_small) / 5
        assert len(saturate(summary.graph)) < len(saturate(lubm_small))

    def test_comparison_repr(self, fig5_graph):
        comparison = completeness_holds(fig5_graph, "weak")
        assert "weak" in repr(comparison)
        assert "equivalent=True" in repr(comparison)
