"""Tests for property cliques — Definitions 5 and 6, Table 1, Lemma 1."""

from repro.core.cliques import compute_cliques, property_distance, saturated_clique
from repro.datasets.sample import FIG2
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDFS_SUBPROPERTYOF
from repro.model.triple import Triple
from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import saturate


def _local_names(clique):
    return frozenset(uri.local_name for uri in clique)


class TestTable1:
    """The cliques of the Figure 2 graph must match Table 1 exactly."""

    def test_source_cliques(self, fig2):
        cliques = compute_cliques(fig2)
        names = {_local_names(c) for c in cliques.source_cliques}
        assert names == {
            frozenset({"author", "title", "editor", "comment"}),
            frozenset({"reviewed"}),
            frozenset({"published"}),
        }

    def test_target_cliques(self, fig2):
        cliques = compute_cliques(fig2)
        names = {_local_names(c) for c in cliques.target_cliques}
        assert names == {
            frozenset({"author"}),
            frozenset({"title"}),
            frozenset({"editor"}),
            frozenset({"comment"}),
            frozenset({"reviewed", "published"}),
        }

    def test_source_clique_of_publications(self, fig2):
        cliques = compute_cliques(fig2)
        sc1 = frozenset({"author", "title", "editor", "comment"})
        for resource in (FIG2.r1, FIG2.r2, FIG2.r3, FIG2.r4, FIG2.r5):
            assert _local_names(cliques.source_clique_of(resource)) == sc1

    def test_target_clique_of_r4_is_tc5(self, fig2):
        cliques = compute_cliques(fig2)
        assert _local_names(cliques.target_clique_of(FIG2.r4)) == {"reviewed", "published"}

    def test_r1_has_empty_target_clique(self, fig2):
        cliques = compute_cliques(fig2)
        assert cliques.target_clique_of(FIG2.r1) == frozenset()

    def test_a1_cliques(self, fig2):
        cliques = compute_cliques(fig2)
        assert _local_names(cliques.source_clique_of(FIG2.a1)) == {"reviewed"}
        assert _local_names(cliques.target_clique_of(FIG2.a1)) == {"author"}

    def test_e1_cliques(self, fig2):
        cliques = compute_cliques(fig2)
        assert _local_names(cliques.source_clique_of(FIG2.e1)) == {"published"}
        assert _local_names(cliques.target_clique_of(FIG2.e1)) == {"editor"}

    def test_typed_only_resource_has_empty_cliques(self, fig2):
        cliques = compute_cliques(fig2)
        assert cliques.source_clique_of(FIG2.r6) == frozenset()
        assert cliques.target_clique_of(FIG2.r6) == frozenset()

    def test_cliques_partition_data_properties(self, fig2):
        cliques = compute_cliques(fig2)
        assert cliques.is_partition_of(fig2.data_properties())

    def test_clique_pair_of(self, fig2):
        cliques = compute_cliques(fig2)
        target, source = cliques.clique_pair_of(FIG2.r4)
        assert _local_names(target) == {"reviewed", "published"}
        assert _local_names(source) == {"author", "title", "editor", "comment"}

    def test_clique_of_property_lookup(self, fig2):
        cliques = compute_cliques(fig2)
        assert _local_names(cliques.source_clique_of_property(FIG2.author)) == {
            "author",
            "title",
            "editor",
            "comment",
        }
        assert cliques.source_clique_of_property(FIG2.missing) == frozenset()


class TestPropertyDistance:
    """Definition 6 on the Figure 2 graph: d(a,t)=0, d(a,e)=1, d(a,c)=2."""

    def test_distance_zero_for_co_occurring(self, fig2):
        assert property_distance(fig2, FIG2.author, FIG2.title) == 0

    def test_distance_one(self, fig2):
        assert property_distance(fig2, FIG2.author, FIG2.editor) == 1

    def test_distance_two(self, fig2):
        assert property_distance(fig2, FIG2.author, FIG2.comment) == 2

    def test_distance_same_property(self, fig2):
        assert property_distance(fig2, FIG2.author, FIG2.author) == 0

    def test_distance_between_unrelated_is_none(self, fig2):
        assert property_distance(fig2, FIG2.author, FIG2.reviewed) is None

    def test_target_side_distance(self, fig2):
        assert property_distance(fig2, FIG2.reviewed, FIG2.published, on_source=False) == 0


class TestRestrictedCliques:
    def test_source_restriction_excludes_typed_subjects(self, fig2):
        untyped = {node for node in fig2.data_nodes() if not fig2.has_type(node)}
        cliques = compute_cliques(fig2, source_nodes=untyped, target_nodes=untyped)
        # r1 (typed) does not contribute, so author/title only co-occur via r4
        source = cliques.source_clique_of(FIG2.r4)
        assert FIG2.author in source and FIG2.title in source
        # r1 itself has no source clique under the restriction
        assert cliques.source_clique_of(FIG2.r1) == frozenset()


class TestSaturationVsCliques:
    """Lemma 1: each clique of G is contained in exactly one clique of G∞."""

    def test_cliques_only_grow_under_saturation(self, fig10_graph):
        cliques_before = compute_cliques(fig10_graph)
        cliques_after = compute_cliques(saturate(fig10_graph))
        for clique in cliques_before.source_cliques:
            containing = [c for c in cliques_after.source_cliques if clique <= c]
            assert len(containing) == 1

    def test_saturated_clique_adds_generalizations(self):
        schema = RDFSchema([Triple(EX.a1, RDFS_SUBPROPERTYOF, EX.a)])
        assert saturated_clique({EX.a1}, schema) == frozenset({EX.a1, EX.a})

    def test_overlapping_saturated_cliques_merge_in_saturation(self, fig10_graph):
        # a1 and a2 are in different source cliques of G but share the
        # generalization a, so they are in one clique of G∞ (Lemma 1, item 2).
        graph = fig10_graph
        schema = RDFSchema.from_graph(graph)
        cliques_before = compute_cliques(graph)
        ns = graph  # just for readability below
        a1_clique = cliques_before.source_clique_of_property(
            next(p for p in graph.data_properties() if p.local_name == "a1")
        )
        a2_clique = cliques_before.source_clique_of_property(
            next(p for p in graph.data_properties() if p.local_name == "a2")
        )
        assert a1_clique != a2_clique
        assert saturated_clique(a1_clique, schema) & saturated_clique(a2_clique, schema)
        cliques_after = compute_cliques(saturate(graph))
        a1_after = cliques_after.source_clique_of_property(
            next(p for p in graph.data_properties() if p.local_name == "a1")
        )
        assert any(p.local_name == "a2" for p in a1_after)

    def test_empty_graph_has_no_cliques(self):
        cliques = compute_cliques(RDFGraph())
        assert cliques.source_cliques == []
        assert cliques.target_cliques == []
        assert cliques.nodes() == set()
