"""Tests for the representation functions (naming) and the quotient builder."""

from repro.core.equivalence import NodePartition, weak_partition
from repro.core.naming import SUMMARY_NS, SummaryNamer
from repro.core.quotient import build_quotient_summary, default_block_namer
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import URI
from repro.model.triple import Triple


class TestSummaryNamer:
    def test_representation_is_injective_and_stable(self):
        namer = SummaryNamer()
        first = namer.representation(frozenset({EX.a}), frozenset({EX.b}))
        again = namer.representation(frozenset({EX.a}), frozenset({EX.b}))
        other = namer.representation(frozenset({EX.a}), frozenset({EX.c}))
        assert first == again
        assert first != other

    def test_empty_cliques_named_ntau(self):
        namer = SummaryNamer()
        ntau = namer.representation(frozenset(), frozenset())
        assert "Ntau" in ntau.value
        assert namer.representation(frozenset(), frozenset()) == ntau

    def test_class_set_naming(self):
        namer = SummaryNamer()
        node = namer.class_set(frozenset({EX.Book, EX.Journal}))
        assert node.value.startswith(SUMMARY_NS.prefix)
        assert "Book" in node.value and "Journal" in node.value

    def test_class_set_empty_is_fresh_each_time(self):
        namer = SummaryNamer()
        assert namer.class_set(frozenset()) != namer.class_set(frozenset())

    def test_fresh_never_collides(self):
        namer = SummaryNamer()
        minted = {namer.fresh("x") for _ in range(50)}
        assert len(minted) == 50

    def test_label_collision_resolved(self):
        namer = SummaryNamer()
        # two distinct keys whose readable label would collide
        first = namer.representation(frozenset(), frozenset({EX.term("ns1/p")}))
        second = namer.representation(frozenset(), frozenset({EX.term("ns2/p")}))
        assert first != second

    def test_many_properties_label_truncated(self):
        namer = SummaryNamer()
        properties = frozenset(EX.term(f"p{i}") for i in range(10))
        node = namer.representation(frozenset(), properties)
        assert "more" in node.value

    def test_for_key_fallback(self):
        namer = SummaryNamer()
        first = namer.for_key(("anything", 1))
        second = namer.for_key(("anything", 1))
        third = namer.for_key(("anything", 2))
        assert first == second != third


class TestQuotientBuilder:
    def test_nodes_in_same_block_share_summary_node(self):
        graph = RDFGraph(
            [
                Triple(EX.x1, EX.p, EX.y1),
                Triple(EX.x2, EX.p, EX.y2),
            ]
        )
        partition = weak_partition(graph)
        summary = build_quotient_summary(graph, partition, kind="weak")
        assert summary.representative(EX.x1) == summary.representative(EX.x2)
        assert summary.representative(EX.y1) == summary.representative(EX.y2)
        assert len(summary.graph.data_triples) == 1

    def test_extents_invert_representatives(self, fig2):
        partition = weak_partition(fig2)
        summary = build_quotient_summary(fig2, partition, kind="weak")
        for node, representative in summary.representative_of.items():
            assert node in summary.extent(representative)

    def test_summary_nodes_minted_in_summary_namespace(self, fig2):
        summary = build_quotient_summary(fig2, weak_partition(fig2), kind="weak")
        for node in summary.summary_data_nodes():
            assert isinstance(node, URI)
            assert node in SUMMARY_NS

    def test_type_triples_keep_class_objects(self, fig2):
        summary = build_quotient_summary(fig2, weak_partition(fig2), kind="weak")
        classes = {t.object for t in summary.graph.type_triples}
        assert classes == fig2.class_nodes()

    def test_custom_block_namer(self):
        graph = RDFGraph([Triple(EX.x, EX.p, EX.y), Triple(EX.x, RDF_TYPE, EX.C)])
        partition = weak_partition(graph)
        counter = iter(range(100))

        def namer(_key):
            return EX.term(f"block{next(counter)}")

        summary = build_quotient_summary(graph, partition, kind="weak", block_namer=namer)
        assert all(node.value.startswith(EX.prefix) for node in summary.summary_data_nodes())

    def test_default_block_namer_dispatch(self):
        namer = SummaryNamer()
        name_block = default_block_namer(namer)
        weak_key = (frozenset({EX.a}), frozenset({EX.b}))
        type_key = ("types", frozenset({EX.Book}))
        untyped_key = ("untyped", (frozenset({EX.a}), frozenset()))
        fallback_key = ("something", EX.x)
        minted = {name_block(k) for k in (weak_key, type_key, untyped_key, fallback_key)}
        assert len(minted) == 4
        assert "Book" in name_block(type_key).value
