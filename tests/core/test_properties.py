"""Tests for the formal properties: Propositions 1-4 and the checkers."""

from repro.core.builders import summarize, weak_summary
from repro.core.properties import (
    check_accuracy_witness,
    check_fixpoint,
    check_representativeness,
    has_unique_data_properties,
    summary_homomorphism_holds,
)
from repro.queries.generator import generate_rbgp_workload
from repro.schema.saturation import saturate

ALL_KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")


class TestUniqueDataProperties:
    """Proposition 4."""

    def test_weak_summary_has_unique_data_properties(self, fig2, bsbm_small, bibliography_small):
        for graph in (fig2, bsbm_small, bibliography_small):
            assert has_unique_data_properties(weak_summary(graph))

    def test_weak_data_edge_count_equals_distinct_properties(self, bsbm_small):
        summary = weak_summary(bsbm_small)
        assert len(summary.graph.data_triples) == len(bsbm_small.data_properties())

    def test_weak_data_node_bound(self, bsbm_small):
        # number of data nodes is at most 2 * |D_G|^0_p
        summary = weak_summary(bsbm_small)
        assert len(summary.summary_data_nodes()) <= 2 * len(bsbm_small.data_properties())

    def test_strong_summary_may_repeat_properties(self, fig2):
        summary = summarize(fig2, "strong")
        assert not has_unique_data_properties(summary)


class TestFixpoint:
    """Propositions 2, 6 and 9: every summary kind is its own summary."""

    def test_fixpoint_on_fig2(self, fig2):
        for kind in ALL_KINDS:
            assert check_fixpoint(summarize(fig2, kind)), kind

    def test_fixpoint_on_bsbm(self, bsbm_small):
        for kind in ("weak", "strong", "typed_weak", "typed_strong"):
            assert check_fixpoint(summarize(bsbm_small, kind)), kind

    def test_fixpoint_on_bibliography(self, bibliography_small):
        for kind in ("weak", "strong"):
            assert check_fixpoint(summarize(bibliography_small, kind)), kind

    def test_fixpoint_on_random_graph(self, random_graph):
        for kind in ("weak", "strong", "typed_weak", "typed_strong"):
            assert check_fixpoint(summarize(random_graph, kind)), kind


class TestHomomorphism:
    def test_homomorphism_for_all_kinds(self, fig2, random_graph):
        for graph in (fig2, random_graph):
            for kind in ALL_KINDS:
                assert summary_homomorphism_holds(graph, summarize(graph, kind)), kind

    def test_homomorphism_on_lubm(self, lubm_small):
        for kind in ("weak", "typed_weak"):
            assert summary_homomorphism_holds(lubm_small, summarize(lubm_small, kind))


class TestRepresentativeness:
    """Proposition 1 / Definition 1 on generated RBGP workloads."""

    def test_fig2_workload_preserved_by_all_kinds(self, fig2):
        queries = generate_rbgp_workload(saturate(fig2), count=15, size=2, seed=1)
        for kind in ALL_KINDS:
            report = check_representativeness(fig2, summarize(fig2, kind), queries)
            assert report.holds, (kind, report.failures)

    def test_bibliography_workload_preserved(self, bibliography_small):
        queries = generate_rbgp_workload(saturate(bibliography_small), count=10, size=2, seed=2)
        for kind in ("weak", "strong", "typed_weak"):
            report = check_representativeness(
                bibliography_small, summarize(bibliography_small, kind), queries
            )
            assert report.holds, (kind, [str(q) for q in report.failures])

    def test_report_ratio_and_repr(self, fig2):
        queries = generate_rbgp_workload(fig2, count=5, seed=3)
        report = check_representativeness(fig2, weak_summary(fig2), queries)
        assert report.ratio == 1.0
        assert "preserved" in repr(report)

    def test_queries_without_answers_are_skipped(self, fig2):
        from repro.datasets.sample import FIG2
        from repro.queries.bgp import BGPQuery, TriplePattern, Variable

        dead_query = BGPQuery(
            [TriplePattern(Variable("x"), FIG2.nonexistent, Variable("y"))]
        )
        report = check_representativeness(fig2, weak_summary(fig2), [dead_query])
        assert report.total == 0
        assert report.holds


class TestAccuracy:
    """Proposition 3, witnessed form."""

    def test_accuracy_witness_on_fig2(self, fig2):
        queries = generate_rbgp_workload(saturate(fig2), count=10, seed=4)
        for kind in ("weak", "strong"):
            report = check_accuracy_witness(summarize(fig2, kind), queries)
            assert report.holds

    def test_accuracy_counts_only_matching_queries(self, fig2):
        from repro.datasets.sample import FIG2
        from repro.queries.bgp import BGPQuery, TriplePattern, Variable

        dead_query = BGPQuery(
            [TriplePattern(Variable("x"), FIG2.nonexistent, Variable("y"))]
        )
        report = check_accuracy_witness(weak_summary(fig2), [dead_query])
        assert report.total == 0
