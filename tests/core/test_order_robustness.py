"""Adversarial insertion-order tests for the summarization pipelines.

Summaries are quotients, so they must not depend on the order triples are
fed in.  The incremental weak summarizer merges nodes greedily as rows
arrive (its internal node ids *do* depend on the order), and the encoded
engine scans store rows in insertion order — both must still land on graphs
isomorphic to the declarative ``builders.weak_summary`` for every shuffle,
and the incremental merge tie-break must be deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.core.builders import summarize, weak_summary
from repro.core.encoded import encoded_summarize
from repro.core.incremental import incremental_weak_summary
from repro.core.isomorphism import canonical_signature, graphs_isomorphic
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import Literal
from repro.model.triple import Triple
from repro.store.memory import MemoryStore

#: A graph engineered to trigger MERGEDATANODES both ways: property chains
#: discovered before and after their connecting resources, plus ties where
#: candidate nodes have equal edge counts.
_ADVERSARIAL_TRIPLES = [
    Triple(EX.term("r1"), EX.term("p1"), EX.term("v1")),
    Triple(EX.term("r1"), EX.term("p2"), EX.term("v2")),
    Triple(EX.term("r2"), EX.term("p2"), EX.term("v3")),
    Triple(EX.term("r2"), EX.term("p3"), EX.term("v4")),
    Triple(EX.term("r3"), EX.term("p3"), Literal("leaf")),
    Triple(EX.term("v1"), EX.term("p4"), EX.term("v4")),
    Triple(EX.term("r4"), EX.term("p5"), EX.term("r1")),
    Triple(EX.term("r5"), EX.term("p5"), EX.term("r2")),
    Triple(EX.term("r1"), RDF_TYPE, EX.term("C1")),
    Triple(EX.term("r6"), RDF_TYPE, EX.term("C1")),
    Triple(EX.term("r6"), RDF_TYPE, EX.term("C2")),
]


def _store_in_order(triples):
    store = MemoryStore()
    store.load_triples(list(triples))
    return store


def _shuffles(triples, count, seed=13):
    rng = random.Random(seed)
    for _ in range(count):
        shuffled = list(triples)
        rng.shuffle(shuffled)
        yield shuffled


class TestIncrementalOrderRobustness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_adversarial_graph_any_order(self, seed):
        reference = weak_summary(RDFGraph(_ADVERSARIAL_TRIPLES), engine="term")
        for shuffled in _shuffles(_ADVERSARIAL_TRIPLES, count=6, seed=seed):
            with _store_in_order(shuffled) as store:
                incremental = incremental_weak_summary(store)
            assert graphs_isomorphic(incremental.graph, reference.graph)

    def test_bsbm_shuffled(self, bsbm_small):
        reference = weak_summary(bsbm_small, engine="term")
        for shuffled in _shuffles(list(bsbm_small), count=3):
            with _store_in_order(shuffled) as store:
                incremental = incremental_weak_summary(store)
            assert graphs_isomorphic(incremental.graph, reference.graph)

    def test_merge_tie_break_is_deterministic(self):
        """Equal-edge-count merges keep the older node in every order."""
        signatures = set()
        for shuffled in _shuffles(_ADVERSARIAL_TRIPLES, count=8, seed=99):
            with _store_in_order(shuffled) as store:
                incremental = incremental_weak_summary(store)
            signatures.add(canonical_signature(incremental.graph))
        assert len(signatures) == 1


class TestEncodedOrderRobustness:
    @pytest.mark.parametrize("kind", ["weak", "strong", "type", "typed_weak", "typed_strong"])
    def test_adversarial_graph_any_order(self, kind):
        reference = summarize(RDFGraph(_ADVERSARIAL_TRIPLES), kind, engine="term")
        for shuffled in _shuffles(_ADVERSARIAL_TRIPLES, count=5, seed=7):
            with _store_in_order(shuffled) as store:
                encoded = encoded_summarize(store, kind)
            assert graphs_isomorphic(encoded.graph, reference.graph)

    def test_encoded_signature_is_order_invariant(self, bsbm_small):
        """Min-id union-find roots make the block structure reproducible."""
        signatures = set()
        for shuffled in _shuffles(list(bsbm_small), count=3, seed=5):
            with _store_in_order(shuffled) as store:
                encoded = encoded_summarize(store, "weak")
            signatures.add(canonical_signature(encoded.graph))
        assert len(signatures) == 1
