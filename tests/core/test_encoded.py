"""Tests for the integer-encoded summarization engine (`repro.core.encoded`).

The engine must be observationally equivalent to the legacy ``Term``
pipeline: for every summary kind and every store backend the two paths
produce isomorphic summary graphs, the same size statistics and a complete
``representative_of`` / ``extents`` provenance.
"""

from __future__ import annotations

import pytest

from repro.core.builders import SUMMARY_KINDS, summarize
from repro.core.encoded import EncodedSummaryEngine, encoded_summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.core.properties import has_unique_data_properties, summary_homomorphism_holds
from repro.errors import UnknownSummaryKindError
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import Literal
from repro.model.triple import Triple, TripleKind
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore

ALL_KINDS = sorted(SUMMARY_KINDS)


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


def _loaded(graph, backend):
    store = backend()
    store.load_graph(graph)
    return store


# ----------------------------------------------------------------------
# encoded vs legacy isomorphism, all kinds, both backends
# ----------------------------------------------------------------------
class TestEncodedMatchesLegacy:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_fig2(self, fig2, backend, kind):
        with _loaded(fig2, backend) as store:
            encoded = encoded_summarize(store, kind)
        legacy = summarize(fig2, kind, engine="term")
        assert graphs_isomorphic(encoded.graph, legacy.graph)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_bsbm(self, bsbm_small, backend, kind):
        with _loaded(bsbm_small, backend) as store:
            encoded = encoded_summarize(store, kind)
        legacy = summarize(bsbm_small, kind, engine="term")
        assert len(encoded.graph) == len(legacy.graph)
        assert graphs_isomorphic(encoded.graph, legacy.graph)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_bibliography(self, bibliography_small, kind):
        with _loaded(bibliography_small, MemoryStore) as store:
            encoded = encoded_summarize(store, kind)
        legacy = summarize(bibliography_small, kind, engine="term")
        assert graphs_isomorphic(encoded.graph, legacy.graph)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_random_graph(self, random_graph, kind):
        legacy = summarize(random_graph, kind, engine="term")
        encoded = summarize(random_graph, kind, engine="encoded")
        assert graphs_isomorphic(encoded.graph, legacy.graph)

    def test_schema_triples_copied_verbatim(self, book_graph, backend):
        with _loaded(book_graph, backend) as store:
            encoded = encoded_summarize(store, "weak")
        assert encoded.graph.schema_triples == book_graph.schema_triples


# ----------------------------------------------------------------------
# provenance and statistics
# ----------------------------------------------------------------------
class TestProvenance:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_summary_is_homomorphic_image(self, fig2, kind):
        encoded = summarize(fig2, kind, engine="encoded")
        assert summary_homomorphism_holds(fig2, encoded)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_data_node_represented(self, bsbm_small, kind):
        encoded = summarize(bsbm_small, kind, engine="encoded")
        for node in bsbm_small.data_nodes():
            assert encoded.representative(node) is not None

    def test_extents_invert_representatives(self, fig2):
        encoded = summarize(fig2, "weak", engine="encoded")
        for node, summary_node in encoded.representative_of.items():
            assert node in encoded.extent(summary_node)

    def test_statistics_match_legacy(self, bsbm_small):
        for kind in ALL_KINDS:
            encoded = summarize(bsbm_small, kind, engine="encoded").statistics()
            legacy = summarize(bsbm_small, kind, engine="term").statistics()
            assert encoded.as_dict() == legacy.as_dict()

    def test_weak_unique_data_properties(self, bsbm_small):
        assert has_unique_data_properties(summarize(bsbm_small, "weak", engine="encoded"))


# ----------------------------------------------------------------------
# the engine facade
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_legacy_alias(self, fig2):
        summary = summarize(fig2, "weak", engine="legacy")
        assert graphs_isomorphic(summary.graph, summarize(fig2, "weak", engine="term").graph)

    def test_default_engine_is_encoded_and_isomorphic(self, fig2):
        default = summarize(fig2, "weak")
        assert graphs_isomorphic(default.graph, summarize(fig2, "weak", engine="term").graph)

    def test_unknown_engine_raises(self, fig2):
        with pytest.raises(UnknownSummaryKindError):
            summarize(fig2, "weak", engine="vectorized")

    def test_unknown_kind_raises_on_engine(self):
        with MemoryStore() as store:
            with pytest.raises(UnknownSummaryKindError):
                EncodedSummaryEngine(store).summarize("bogus")

    def test_empty_graph(self):
        summary = summarize(RDFGraph(), "weak", engine="encoded")
        assert len(summary.graph) == 0
        assert summary.summary_data_nodes() == set()

    def test_empty_store(self, backend):
        with backend() as store:
            summary = encoded_summarize(store, "strong")
        assert len(summary.graph) == 0


# ----------------------------------------------------------------------
# edge cases the Term pipeline handles implicitly
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_typed_only_resources_share_ntau(self, backend):
        graph = RDFGraph(
            [
                Triple(EX.term("a"), RDF_TYPE, EX.term("C")),
                Triple(EX.term("b"), RDF_TYPE, EX.term("C")),
                Triple(EX.term("c"), RDF_TYPE, EX.term("D")),
            ]
        )
        with _loaded(graph, backend) as store:
            encoded = encoded_summarize(store, "weak")
        representatives = {encoded.representative(node) for node in graph.data_nodes()}
        assert len(representatives) == 1
        assert "Ntau" in next(iter(representatives)).value

    def test_equal_literals_share_a_node(self, backend):
        graph = RDFGraph(
            [
                Triple(EX.term("a"), EX.term("p"), Literal("v")),
                Triple(EX.term("b"), EX.term("p"), Literal("v")),
            ]
        )
        with _loaded(graph, backend) as store:
            encoded = encoded_summarize(store, "weak")
        legacy = summarize(graph, "weak", engine="term")
        assert graphs_isomorphic(encoded.graph, legacy.graph)
        assert len(encoded.graph.data_triples) == 1

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_mixed_typed_untyped_chains(self, kind, backend):
        graph = RDFGraph(
            [
                Triple(EX.term("a"), EX.term("p"), EX.term("b")),
                Triple(EX.term("b"), EX.term("q"), EX.term("c")),
                Triple(EX.term("c"), EX.term("r"), Literal("leaf")),
                Triple(EX.term("b"), RDF_TYPE, EX.term("C")),
                Triple(EX.term("d"), RDF_TYPE, EX.term("C")),
            ]
        )
        with _loaded(graph, backend) as store:
            encoded = encoded_summarize(store, kind)
        legacy = summarize(graph, kind, engine="term")
        assert graphs_isomorphic(encoded.graph, legacy.graph)


# ----------------------------------------------------------------------
# batched scans and index pass
# ----------------------------------------------------------------------
class TestStoreSupport:
    def test_scan_batches_cover_scan(self, bsbm_small, backend):
        with _loaded(bsbm_small, backend) as store:
            row_wise = [tuple(row) for row in store.scan_data()]
            batched = [
                tuple(row)
                for batch in store.scan_batches(TripleKind.DATA, batch_size=17)
                for row in batch
            ]
        assert batched == row_wise

    def test_scan_batches_rejects_bad_batch_size(self, backend):
        with backend() as store:
            with pytest.raises(Exception):
                list(store.scan_batches(TripleKind.DATA, batch_size=0))

    def test_small_batch_size_same_summary(self, fig2):
        with _loaded(fig2, MemoryStore) as store:
            tiny = encoded_summarize(store, "weak", batch_size=1)
        with _loaded(fig2, MemoryStore) as store:
            large = encoded_summarize(store, "weak", batch_size=100_000)
        assert graphs_isomorphic(tiny.graph, large.graph)

    def test_sqlite_index_pass_is_idempotent(self, fig2):
        with _loaded(fig2, SQLiteStore) as store:
            store.ensure_summarization_indexes()
            store.ensure_summarization_indexes()
            names = {
                row[0]
                for row in store._conn().execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert {"idx_data_spo", "idx_data_ps"} <= names
            summary = encoded_summarize(store, "weak")
        assert graphs_isomorphic(summary.graph, summarize(fig2, "weak", engine="term").graph)
