"""Tests for the bisimulation-baseline summaries (related work, Section 8)."""

import pytest

from repro.core.bisimulation import (
    backward_bisimulation_partition,
    bisimulation_summary,
    forward_bisimulation_partition,
    full_bisimulation_partition,
)
from repro.core.builders import weak_summary
from repro.core.properties import summary_homomorphism_holds
from repro.datasets.sample import FIG2
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple


class TestPartitions:
    def test_forward_groups_nodes_with_same_outgoing_structure(self, fig2):
        partition = forward_bisimulation_partition(fig2)
        # t1..t4 are all sinks with no types: forward-bisimilar
        assert partition.equivalent(FIG2.t1, FIG2.t2)
        assert partition.equivalent(FIG2.t1, FIG2.t4)

    def test_forward_separates_different_outgoing_properties(self, fig2):
        partition = forward_bisimulation_partition(fig2)
        # r1 (author,title) vs r3 (editor,comment) differ on outgoing labels
        assert not partition.equivalent(FIG2.r1, FIG2.r3)

    def test_backward_groups_nodes_with_same_incoming_structure(self, fig2):
        partition = backward_bisimulation_partition(fig2)
        # t1 and t2 are the titles of r1 and r2, which are backward-bisimilar
        # (both typed Book, no incoming data edges), so t1 ~ t2.
        assert partition.equivalent(FIG2.t1, FIG2.t2)
        # t3 is the title of r4, whose incoming edges (reviewed, published)
        # distinguish it from r5; backward refinement therefore separates
        # t3 from t4.
        assert not partition.equivalent(FIG2.t3, FIG2.t4)

    def test_full_refines_forward_and_backward(self, fig2):
        forward = forward_bisimulation_partition(fig2)
        backward = backward_bisimulation_partition(fig2)
        full = full_bisimulation_partition(fig2)
        assert len(full) >= len(forward)
        assert len(full) >= len(backward)

    def test_bounded_refinement_is_coarser(self, bsbm_small):
        bounded = full_bisimulation_partition(bsbm_small, max_rounds=1)
        unbounded = full_bisimulation_partition(bsbm_small)
        assert len(bounded) <= len(unbounded)

    def test_types_respected_from_round_zero(self):
        graph = RDFGraph(
            [
                Triple(EX.a, RDF_TYPE, EX.C1),
                Triple(EX.b, RDF_TYPE, EX.C2),
                Triple(EX.a, EX.p, EX.x),
                Triple(EX.b, EX.p, EX.x),
            ]
        )
        partition = forward_bisimulation_partition(graph)
        assert not partition.equivalent(EX.a, EX.b)


class TestBisimulationSummary:
    def test_summary_is_homomorphic_image(self, fig2):
        for direction in ("forward", "backward", "full"):
            summary = bisimulation_summary(fig2, direction)
            assert summary_homomorphism_holds(fig2, summary)

    def test_unknown_direction_rejected(self, fig2):
        with pytest.raises(ValueError):
            bisimulation_summary(fig2, "sideways")

    def test_kind_label(self, fig2):
        assert bisimulation_summary(fig2, "forward").kind == "bisim_forward"

    def test_bisimulation_much_larger_than_weak_summary(self, bsbm_small):
        """The paper's Section 8 argument: bisimulation summaries can be as
        large as the input, unlike the clique-based summaries."""
        bisim = bisimulation_summary(bsbm_small, "full")
        weak = weak_summary(bsbm_small)
        assert len(bisim.graph) > 5 * len(weak.graph)
        assert len(bisim.graph) > 0.5 * len(bsbm_small)

    def test_bisimulation_still_smaller_or_equal_to_input(self, bsbm_small):
        bisim = bisimulation_summary(bsbm_small, "full")
        assert len(bisim.graph) <= len(bsbm_small)

    def test_schema_copied(self, book_graph):
        summary = bisimulation_summary(book_graph, "forward")
        assert summary.graph.schema_triples == book_graph.schema_triples
