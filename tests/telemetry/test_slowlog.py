"""The slow-query log: threshold gating, ring capacity, JSON shape."""

import pytest

from repro.telemetry import SlowQueryLog


def _record(log, seconds, **overrides):
    defaults = dict(total_seconds=seconds, graph="g", query="q")
    defaults.update(overrides)
    return log.record(**defaults)


def test_threshold_gates_recording():
    log = SlowQueryLog(threshold_seconds=0.1)
    assert not _record(log, 0.05)
    assert _record(log, 0.1)  # at the threshold counts as slow
    assert _record(log, 0.5)
    assert len(log) == 2


def test_threshold_is_adjustable():
    log = SlowQueryLog(threshold_seconds=10.0)
    assert not _record(log, 1.0)
    log.threshold_seconds = 0.5
    assert log.threshold_seconds == 0.5
    assert _record(log, 1.0)


def test_ring_capacity_and_dropped_accounting():
    log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
    for index in range(5):
        _record(log, 1.0, query=f"q{index}")
    assert len(log) == 3
    assert [entry["query"] for entry in log.entries()] == ["q2", "q3", "q4"]
    assert log.dropped == 2


def test_invalid_capacity_raises():
    with pytest.raises(ValueError):
        SlowQueryLog(capacity=0)


def test_entry_shape_and_optional_fields():
    log = SlowQueryLog(threshold_seconds=0.0)
    _record(
        log,
        2.0,
        guard_seconds=0.5,
        evaluation_seconds=1.5,
        pruned=False,
        sparql="SELECT ?s WHERE { ?s ?p ?o }",
        strategy="hash",
        answer_count=9,
        trace_id="deadbeefdeadbeef",
        shards=4,
    )
    (entry,) = log.entries()
    assert entry["graph"] == "g" and entry["query"] == "q"
    assert entry["total_seconds"] == 2.0
    assert entry["guard_seconds"] == 0.5
    assert entry["evaluation_seconds"] == 1.5
    assert entry["sparql"].startswith("SELECT")
    assert entry["strategy"] == "hash"
    assert entry["answer_count"] == 9
    assert entry["trace_id"] == "deadbeefdeadbeef"
    assert entry["shards"] == 4  # extra keyword fields ride along
    assert entry["ts"] > 0


def test_sparse_entry_omits_optional_keys():
    log = SlowQueryLog(threshold_seconds=0.0)
    _record(log, 1.0)
    (entry,) = log.entries()
    for absent in ("sparql", "strategy", "answer_count", "trace_id"):
        assert absent not in entry


def test_as_dict_and_clear():
    log = SlowQueryLog(threshold_seconds=0.25, capacity=8)
    _record(log, 1.0)
    payload = log.as_dict()
    assert payload["threshold_seconds"] == 0.25
    assert payload["capacity"] == 8
    assert payload["dropped"] == 0
    assert len(payload["entries"]) == 1
    log.clear()
    assert not log.entries()
    assert log.as_dict()["entries"] == []
