"""Span trees: construction, serialization, grafting, rendering."""

from repro.telemetry import QueryTrace, Span, new_trace_id


def test_new_trace_id_shape():
    first, second = new_trace_id(), new_trace_id()
    assert len(first) == 16 and all(c in "0123456789abcdef" for c in first)
    assert first != second


def test_nested_spans_build_a_tree():
    trace = QueryTrace()
    with trace.span("outer", mode="test") as outer:
        with trace.span("inner"):
            pass
        with trace.span("sibling"):
            pass
    assert [child.name for child in trace.root.children] == ["outer"]
    assert [child.name for child in outer.children] == ["inner", "sibling"]
    assert outer.attributes == {"mode": "test"}
    assert outer.seconds >= sum(child.seconds for child in outer.children)


def test_finish_defaults_to_sum_of_children():
    trace = QueryTrace()
    with trace.span("a"):
        pass
    with trace.span("b"):
        pass
    trace.finish()
    assert trace.root.seconds == sum(child.seconds for child in trace.root.children)
    trace.finish(1.5)
    assert trace.root.seconds == 1.5


def test_annotate_targets_the_open_span():
    trace = QueryTrace()
    with trace.span("stage"):
        trace.annotate(rows=7)
    trace.annotate(graph="g")
    assert trace.root.children[0].attributes == {"rows": 7}
    assert trace.root.attributes == {"graph": "g"}


def test_serialization_round_trip():
    trace = QueryTrace(trace_id="abc123abc123abc1")
    with trace.span("guard", prunable=True):
        pass
    with trace.span("evaluate", strategy="hash"):
        trace.annotate(answers=3)
    trace.finish()
    payload = trace.as_dict()
    assert payload["trace_id"] == "abc123abc123abc1"
    restored = QueryTrace.from_dict(payload)
    assert restored.trace_id == trace.trace_id
    assert [span.name for span in restored.root.walk()] == [
        span.name for span in trace.root.walk()
    ]
    assert restored.root.find("evaluate").attributes == {
        "strategy": "hash",
        "answers": 3,
    }


def test_span_from_dict_tolerates_sparse_payloads():
    span = Span.from_dict({"name": "x"})
    assert span.name == "x" and span.seconds == 0.0
    assert span.attributes == {} and span.children == []


def test_graft_attaches_a_finished_subtree():
    trace = QueryTrace()
    subtree = Span("worker-0", seconds=0.25, children=[Span("query")])
    with trace.span("scatter") as scatter:
        trace.graft(subtree, under=scatter)
    assert trace.root.find("worker-0") is subtree
    # without an explicit parent the graft lands under the open span
    other = Span("late")
    trace.graft(other)
    assert other in trace.root.children


def test_find_and_walk():
    root = Span("a", children=[Span("b", children=[Span("c")]), Span("c")])
    assert root.find("c") is root.children[0].children[0]
    assert root.find("missing") is None
    assert [span.name for span in root.walk()] == ["a", "b", "c", "c"]


def test_leaked_inner_span_still_pops_to_the_opener():
    trace = QueryTrace()
    outer = trace.span("outer")
    inner = trace.span("inner")
    outer.__enter__()
    inner.__enter__()
    # close the outer first: the stack must recover instead of corrupting
    outer.__exit__(None, None, None)
    with trace.span("after"):
        pass
    assert [child.name for child in trace.root.children] == ["outer", "after"]


def test_render_mentions_every_span_and_the_id():
    trace = QueryTrace()
    with trace.span("guard"):
        pass
    with trace.span("evaluate", strategy="hash"):
        pass
    trace.finish()
    rendered = trace.render()
    assert trace.trace_id in rendered
    assert "guard" in rendered and "evaluate" in rendered
    assert "strategy=hash" in rendered
