"""The metrics registry: instruments, bucket math, disabled-mode identity."""

import threading

import pytest

from repro import telemetry
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.telemetry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def restore_enabled():
    """Whatever a test does to the global flag, the session leaves enabled."""
    previous = telemetry.enabled()
    telemetry.set_enabled(True)
    yield
    telemetry.set_enabled(previous)


class TestCounter:
    def test_basic_increments(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.int_value == 3

    def test_negative_increment_raises(self):
        counter = Counter("events")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_parent_chaining(self):
        parent = Counter("family")
        first = Counter("a", parent=parent)
        second = Counter("b", parent=parent)
        first.inc(3)
        second.inc(4)
        assert first.value == 3
        assert second.value == 4
        assert parent.value == 7

    def test_concurrent_increments_under_barrier(self):
        """N threads released together must lose no increments."""
        threads = 8
        per_thread = 2000
        parent = Counter("family")
        counter = Counter("child", parent=parent)
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.int_value == threads * per_thread
        assert parent.int_value == threads * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callbacks_add_to_value(self):
        gauge = Gauge("depth")
        gauge.set(1)
        sampler = lambda: 41  # noqa: E731
        gauge.add_callback(sampler)
        assert gauge.value == 42
        gauge.remove_callback(sampler)
        assert gauge.value == 1
        # removing twice is harmless
        gauge.remove_callback(sampler)

    def test_dead_callback_is_tolerated(self):
        gauge = Gauge("depth")

        def broken():
            raise RuntimeError("sampler died")

        gauge.add_callback(broken)
        gauge.add_callback(lambda: 7)
        assert gauge.value == 7


class TestHistogram:
    def test_bucket_math(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 10.0, 11.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # bisect_left puts a value equal to a bound into that bound's
        # bucket — the Prometheus le (<=) semantics
        assert snapshot["buckets"] == [(0.1, 2), (1.0, 3), (10.0, 4)]
        assert snapshot["count"] == 5  # the 11.0 lives in the implicit +Inf
        assert snapshot["sum"] == pytest.approx(21.65)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(21.65)

    def test_cumulative_counts_are_monotone(self):
        histogram = Histogram("latency")
        for index in range(200):
            histogram.observe(index / 40.0)
        counts = [count for _bound, count in histogram.snapshot()["buckets"]]
        assert counts == sorted(counts)
        assert counts[-1] <= histogram.count

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_concurrent_observations_under_barrier(self):
        threads = 6
        per_thread = 1500
        histogram = Histogram("latency", buckets=(0.5,))
        barrier = threading.Barrier(threads)

        def worker(offset):
            barrier.wait()
            for index in range(per_thread):
                histogram.observe((index + offset) % 2)  # alternates 0 / 1

        pool = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = histogram.snapshot()
        assert snapshot["count"] == threads * per_thread
        assert snapshot["buckets"] == [(0.5, threads * per_thread // 2)]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 3
        assert registry.names() == ["a.b", "g", "h"]
        assert "a.b" in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")
        with pytest.raises(TypeError):
            registry.histogram("name")

    def test_as_dict_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = registry.as_dict()
        assert payload["c"] == {"type": "counter", "value": 2.0}
        assert payload["g"] == {"type": "gauge", "value": 1.5}
        assert payload["h"]["type"] == "histogram"
        assert payload["h"]["count"] == 1
        assert payload["h"]["buckets"] == [{"le": 1.0, "count": 1}]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("query.guard.pruned").inc(3)
        registry.gauge("executor.queue.depth").set(2)
        registry.histogram("join.stage.seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_query_guard_pruned_total counter" in lines
        assert "repro_query_guard_pruned_total 3" in lines
        assert "# TYPE repro_executor_queue_depth gauge" in lines
        assert "repro_executor_queue_depth 2" in lines
        assert "# TYPE repro_join_stage_seconds histogram" in lines
        assert 'repro_join_stage_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_join_stage_seconds_bucket{le="1"} 1' in lines
        assert 'repro_join_stage_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_join_stage_seconds_sum 0.05" in lines
        assert "repro_join_stage_seconds_count 1" in lines
        assert text.endswith("\n")


class TestDisabledMode:
    def test_accessors_hand_out_shared_null_instruments(self, restore_enabled):
        telemetry.set_enabled(False)
        assert telemetry.counter("anything") is NULL_COUNTER
        assert telemetry.gauge("anything") is NULL_GAUGE
        assert telemetry.histogram("anything") is NULL_HISTOGRAM

    def test_null_instruments_record_nothing(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(5)
        NULL_GAUGE.inc(5)
        NULL_GAUGE.add_callback(lambda: 99)
        NULL_HISTOGRAM.observe(5)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0
        assert NULL_HISTOGRAM.count == 0

    def test_disabled_stack_creates_zero_registry_entries(
        self, restore_enabled, fig2
    ):
        """A service built while disabled must not touch the registry."""
        before = set(telemetry.REGISTRY.names())
        telemetry.set_enabled(False)
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            service = QueryService(catalog)
            from repro.queries.parser import parse_query

            answer = service.answer("fig2", parse_query("SELECT ?s WHERE { ?s ?p ?o }"))
            assert answer.answers
        assert set(telemetry.REGISTRY.names()) == before

    def test_enabled_stack_registers_query_metrics(self, restore_enabled, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            QueryService(catalog)
        for name in ("query.count", "query.guard.seconds", "lock.write_wait.seconds"):
            assert name in telemetry.REGISTRY
