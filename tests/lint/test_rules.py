"""Each lint rule: demonstrated by a failing fixture, quiet on a passing one."""

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"

CASES = [
    ("guarded-by", "guarded_by_fail.py", 2, "guarded_by_ok.py"),
    ("no-blocking-under-lock", "no_blocking_fail.py", 4, "no_blocking_ok.py"),
    ("no-nested-rwlock", "nested_rwlock_fail.py", 2, "nested_rwlock_ok.py"),
    ("no-pickled-terms", "cluster_pickle_fail.py", 2, "cluster_pickle_ok.py"),
    ("wall-clock-duration", "wall_clock_fail.py", 3, "wall_clock_ok.py"),
    (
        "telemetry-instrument-in-hot-loop",
        "telemetry_loop_fail.py",
        2,
        "telemetry_loop_ok.py",
    ),
]


@pytest.mark.parametrize("rule, fail_name, expected, ok_name", CASES)
def test_rule_fires_on_failing_fixture(rule, fail_name, expected, ok_name):
    findings, _ = run_lint([FIXTURES / fail_name])
    fired = [f for f in findings if f.rule == rule]
    assert len(fired) == expected, [f.render() for f in findings]
    # the failing fixture must not trip unrelated rules
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("rule, fail_name, expected, ok_name", CASES)
def test_rule_quiet_on_passing_fixture(rule, fail_name, expected, ok_name):
    findings, _ = run_lint([FIXTURES / ok_name])
    assert findings == [], [f.render() for f in findings]


def test_findings_carry_locations_and_messages():
    findings, _ = run_lint([FIXTURES / "guarded_by_fail.py"])
    for finding in findings:
        assert finding.line > 0
        assert finding.path.endswith("guarded_by_fail.py")
        assert "self._lock" in finding.message


def test_rule_filter_restricts_to_selected_rules():
    findings, _ = run_lint(
        [FIXTURES], rule_names=["wall-clock-duration"]
    )
    assert findings, "expected wall-clock findings from the corpus"
    assert {f.rule for f in findings} == {"wall-clock-duration"}


def test_repository_is_lint_clean():
    """The acceptance bar: zero unsuppressed findings on the live tree."""
    import repro

    findings, engine = run_lint([Path(repro.__file__).parent])
    assert findings == [], [f.render() for f in findings]
    assert engine.files_checked > 50
    # the deliberate exceptions are suppressed with comments, not absent
    assert engine.suppressed_count >= 3
