"""Engine behaviour: suppressions, output formats, exit codes, CLI wiring."""

import json
from pathlib import Path

from repro.lint import run_lint
from repro.lint.engine import main

FIXTURES = Path(__file__).parent / "fixtures"

_VIOLATION = (
    "from time import time\n"
    "\n"
    "def f(start, work):\n"
    "    work()\n"
    "    return time() - start{trailer}\n"
)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestSuppressions:
    def test_trailing_suppression_silences_the_line(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            _VIOLATION.format(trailer="  # repro-lint: disable=wall-clock-duration"),
        )
        findings, engine = run_lint([path])
        assert findings == []
        assert engine.suppressed_count == 1

    def test_standalone_comment_suppresses_the_next_line(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "from time import time\n"
            "\n"
            "def f(start, work):\n"
            "    work()\n"
            "    # repro-lint: disable=wall-clock-duration\n"
            "    return time() - start\n",
        )
        findings, engine = run_lint([path])
        assert findings == []
        assert engine.suppressed_count == 1

    def test_disable_all_silences_every_rule(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            _VIOLATION.format(trailer="  # repro-lint: disable=all"),
        )
        findings, _ = run_lint([path])
        assert findings == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            _VIOLATION.format(trailer="  # repro-lint: disable=guarded-by"),
        )
        findings, engine = run_lint([path])
        assert [f.rule for f in findings] == ["wall-clock-duration"]
        assert engine.suppressed_count == 0

    def test_suppression_on_other_line_does_not_leak(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "from time import time\n"
            "# repro-lint: disable=wall-clock-duration\n"
            "\n"
            "def f(start, work):\n"
            "    work()\n"
            "    return time() - start\n",
        )
        findings, _ = run_lint([path])
        assert [f.rule for f in findings] == ["wall-clock-duration"]


class TestCli:
    def test_exit_code_one_on_findings(self, capsys):
        rc = main([str(FIXTURES / "wall_clock_fail.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "wall-clock-duration" in out

    def test_exit_code_zero_on_clean_tree(self, capsys):
        rc = main([str(FIXTURES / "wall_clock_ok.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s)" in out

    def test_json_output_is_machine_readable(self, capsys):
        rc = main([str(FIXTURES / "no_blocking_fail.py"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["files_checked"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"no-blocking-under-lock"}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}

    def test_list_rules_names_every_rule(self, capsys):
        rc = main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule in (
            "guarded-by",
            "no-blocking-under-lock",
            "no-nested-rwlock",
            "no-pickled-terms",
            "wall-clock-duration",
            "telemetry-instrument-in-hot-loop",
        ):
            assert rule in out

    def test_unknown_rule_is_an_error(self, capsys):
        rc = main(["--rules", "no-such-rule", str(FIXTURES)])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_repro_cli_subcommand_forwards(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["lint", "--json", str(FIXTURES / "guarded_by_ok.py")])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["findings"] == []


class TestEngineMechanics:
    def test_syntax_error_files_are_skipped(self, tmp_path):
        _write(tmp_path, "broken.py", "def f(:\n")
        _write(
            tmp_path,
            "mod.py",
            _VIOLATION.format(trailer=""),
        )
        findings, engine = run_lint([tmp_path])
        assert engine.files_checked == 1
        assert [f.rule for f in findings] == ["wall-clock-duration"]

    def test_findings_sorted_by_location(self):
        findings, _ = run_lint([FIXTURES / "no_blocking_fail.py"])
        lines = [f.line for f in findings]
        assert lines == sorted(lines)
