"""Passing corpus: durations from perf_counter, timestamps from time."""

from time import monotonic, perf_counter, time


def elapsed(work):
    start = perf_counter()
    work()
    return perf_counter() - start


def remaining(deadline):
    return deadline - monotonic()


def stamp(payload):
    payload["ts"] = time()  # a timestamp, not a duration: fine
    return payload
