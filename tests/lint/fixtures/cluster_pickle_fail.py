"""Failing corpus: cluster code pickling term-bearing payloads."""

import pickle


def ship_terms(connection, terms):
    blob = pickle.dumps(terms)  # finding: terms must go through protocol
    connection.send(blob)


def receive_terms(blob):
    return pickle.loads(blob and blob.terms_blob)  # finding
