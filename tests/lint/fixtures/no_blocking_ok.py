"""Passing corpus: nothing blocking runs while the ship lock is held."""


class Coordinator:
    def ship(self, handle, item):
        with handle.ship_lock:
            handle.reship_pending.discard(item.name)
            handle.delta_queue.put(item, timeout=0.2)  # timed put is fine
            handle.process.join(timeout=5.0)  # timed join is fine
        handle.connection.send(item)  # outside the lock
        self._spawn(handle)
