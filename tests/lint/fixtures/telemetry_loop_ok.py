"""Passing corpus: instruments hoisted out of the loop and reused."""

from repro import telemetry


def ingest(rows):
    counter = telemetry.counter("ingest.rows")
    for row in rows:
        counter.inc()
        absorb(row)


def absorb(row):
    return row
