"""Failing corpus: instrument get-or-create inside a hot loop."""

from repro import telemetry


def ingest(rows):
    for row in rows:
        telemetry.counter("ingest.rows").inc()  # finding: per-iteration lookup
        absorb(row)


def drain(queue):
    while not queue.empty():
        telemetry.histogram("drain.seconds").observe(0.0)  # finding
        queue.get()


def absorb(row):
    return row
