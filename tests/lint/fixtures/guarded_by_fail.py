"""Failing corpus: guarded attribute touched outside its lock."""

import threading


class Stats:
    def __init__(self):
        #: guarded by self._lock
        self.count = 0
        self._lock = threading.Lock()

    def bump(self):
        self.count += 1  # finding: no 'with self._lock' around the access

    def read(self):
        return self.count  # finding: bare read outside the lock
