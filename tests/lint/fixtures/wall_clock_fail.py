"""Failing corpus: wall-clock deltas used as durations."""

import time
from time import time as now


def elapsed(work):
    start = now()
    work()
    return now() - start  # finding: wall clock delta


def uptime(started_at):
    return time.time() - started_at  # finding: time.time() delta


def remaining(deadline):
    return deadline - now()  # finding: deadline arithmetic on wall clock
