"""Failing corpus: code under a held RW lock re-enters an entry point."""


class Service:
    def __init__(self, entry):
        self.entry = entry

    def refresh(self):
        with self.entry.rwlock.read_locked():
            self._reload()  # finding: _reload() re-enters add_triples()

    def _reload(self):
        self.entry.add_triples([])


class RawSpanService:
    def __init__(self, entry):
        self.entry = entry

    def probe(self, query):
        self.entry.rwlock.acquire_read()
        try:
            return self.entry.service.answer(query)  # finding: direct re-entry
        finally:
            self.entry.rwlock.release_read()
