"""Passing corpus: the entry points run only outside the RW lock."""


class Service:
    def __init__(self, entry):
        self.entry = entry

    def refresh(self):
        with self.entry.rwlock.read_locked():
            rows = self.entry.snapshot_rows()
        self.entry.add_triples(rows)  # lock already released

    def probe(self, query):
        self.entry.rwlock.acquire_read()
        try:
            plan = self.entry.planner()
        finally:
            self.entry.rwlock.release_read()
        return self.entry.service.answer(query), plan
