"""Passing corpus: every guarded access sits inside the matching lock."""

import threading

from repro.utils.concurrency import ReadWriteLock


class Stats:
    def __init__(self):
        #: guarded by self._lock
        self.count = 0
        self._lock = threading.Lock()
        self.rwlock = ReadWriteLock()
        self.snapshot = 0  #: guarded by self.rwlock

    def bump(self):
        with self._lock:
            self.count += 1

    def read(self):
        with self._lock:
            return self.count

    def refresh(self):
        with self.rwlock.write_locked():
            self.snapshot += 1

    def peek(self):
        with self.rwlock.read_locked():
            return self.snapshot
