"""Failing corpus: blocking calls under a ship lock (the PR 7 class)."""


class Coordinator:
    def ship(self, handle, item):
        with handle.ship_lock:
            handle.connection.send(item)  # finding: pipe send under lock
            handle.delta_queue.put(item)  # finding: untimed bounded put
            handle.process.join()  # finding: untimed join
            self._spawn(handle)  # finding: worker spawn under lock
