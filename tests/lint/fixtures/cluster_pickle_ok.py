"""Passing corpus: cluster code pickling only packed, term-free payloads."""

import pickle


def ship_rows(connection, packed_rows):
    blob = pickle.dumps(packed_rows)  # plain int tuples: fine
    connection.send(blob)


def receive_rows(blob):
    return pickle.loads(blob)
