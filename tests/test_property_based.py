"""Property-based tests (hypothesis) on the core invariants.

Random well-formed RDF graphs are generated from small pools of URIs,
literals and classes, with optional RDFS constraints; the paper's formal
propositions must hold on every one of them.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.core.builders import strong_summary, summarize, weak_summary
from repro.core.cliques import compute_cliques
from repro.core.equivalence import strong_partition, weak_partition
from repro.core.properties import (
    check_fixpoint,
    has_unique_data_properties,
    summary_homomorphism_holds,
)
from repro.core.shortcuts import completeness_holds
from repro.io.ntriples import parse_ntriples, serialize_ntriples
from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    EX,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.terms import Literal, URI
from repro.model.triple import Triple
from repro.schema.saturation import saturate
from repro.utils.unionfind import UnionFind

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_RESOURCES = [EX.term(f"r{i}") for i in range(12)]
_PROPERTIES = [EX.term(f"p{i}") for i in range(5)]
_CLASSES = [EX.term(f"C{i}") for i in range(4)]
_LITERALS = [Literal(f"v{i}") for i in range(5)]

_data_triple = st.builds(
    Triple,
    st.sampled_from(_RESOURCES),
    st.sampled_from(_PROPERTIES),
    st.one_of(st.sampled_from(_RESOURCES), st.sampled_from(_LITERALS)),
)
_type_triple = st.builds(
    Triple,
    st.sampled_from(_RESOURCES),
    st.just(RDF_TYPE),
    st.sampled_from(_CLASSES),
)
_schema_triple = st.one_of(
    st.builds(Triple, st.sampled_from(_CLASSES), st.just(RDFS_SUBCLASSOF), st.sampled_from(_CLASSES)),
    st.builds(
        Triple, st.sampled_from(_PROPERTIES), st.just(RDFS_SUBPROPERTYOF), st.sampled_from(_PROPERTIES)
    ),
    st.builds(Triple, st.sampled_from(_PROPERTIES), st.just(RDFS_DOMAIN), st.sampled_from(_CLASSES)),
    st.builds(Triple, st.sampled_from(_PROPERTIES), st.just(RDFS_RANGE), st.sampled_from(_CLASSES)),
)


def graphs(with_schema: bool = True, min_data: int = 1, max_data: int = 25):
    """Strategy producing random well-formed RDF graphs."""
    schema = st.lists(_schema_triple, max_size=5) if with_schema else st.just([])
    return st.builds(
        lambda data, types, schema_triples: RDFGraph([*data, *types, *schema_triples]),
        st.lists(_data_triple, min_size=min_data, max_size=max_data),
        st.lists(_type_triple, max_size=10),
        schema,
    )


COMMON_SETTINGS = settings(max_examples=40, deadline=None)


# ----------------------------------------------------------------------
# clique and partition invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(graphs(with_schema=False))
def test_cliques_partition_data_properties(graph):
    cliques = compute_cliques(graph)
    assert cliques.is_partition_of(graph.data_properties())


@COMMON_SETTINGS
@given(graphs(with_schema=False))
def test_every_data_node_has_at_most_one_clique_pair(graph):
    cliques = compute_cliques(graph)
    for triple in graph.data_triples:
        assert triple.predicate in cliques.source_clique_of(triple.subject)
        assert triple.predicate in cliques.target_clique_of(triple.object)


@COMMON_SETTINGS
@given(graphs(with_schema=False))
def test_strong_equivalence_refines_weak(graph):
    weak = weak_partition(graph)
    strong = strong_partition(graph)
    for node in graph.data_nodes():
        # nodes of one strong block are all in the same weak block
        strong_members = strong.members(strong.key_of(node))
        weak_key = weak.key_of(node)
        assert all(weak.key_of(member) == weak_key for member in strong_members)


# ----------------------------------------------------------------------
# summary invariants (Propositions 2-4)
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(graphs())
def test_weak_summary_unique_data_properties(graph):
    assert has_unique_data_properties(weak_summary(graph))


@COMMON_SETTINGS
@given(graphs())
def test_weak_summary_size_bounds(graph):
    summary = weak_summary(graph)
    distinct_properties = len(graph.data_properties())
    assert len(summary.graph.data_triples) == distinct_properties
    assert len(summary.summary_data_nodes()) <= 2 * distinct_properties + 1  # +1 for Nτ


@COMMON_SETTINGS
@given(graphs(), st.sampled_from(["weak", "strong", "typed_weak", "typed_strong"]))
def test_summary_is_homomorphic_image(graph, kind):
    assert summary_homomorphism_holds(graph, summarize(graph, kind))


@COMMON_SETTINGS
@given(graphs(), st.sampled_from(["weak", "strong"]))
def test_summary_fixpoint(graph, kind):
    assert check_fixpoint(summarize(graph, kind))


@COMMON_SETTINGS
@given(graphs())
def test_summary_never_larger_than_graph(graph):
    for kind in ("weak", "strong"):
        assert len(summarize(graph, kind).graph) <= len(graph)


# ----------------------------------------------------------------------
# saturation and completeness invariants (Propositions 5 and 8)
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(graphs())
def test_saturation_is_monotone_and_idempotent(graph):
    saturated = saturate(graph)
    assert set(graph) <= set(saturated)
    assert set(saturate(saturated)) == set(saturated)


@settings(max_examples=20, deadline=None)
@given(graphs())
def test_weak_completeness_shortcut(graph):
    assert completeness_holds(graph, "weak").equivalent


@settings(max_examples=20, deadline=None)
@given(graphs())
def test_strong_completeness_shortcut(graph):
    assert completeness_holds(graph, "strong").equivalent


# ----------------------------------------------------------------------
# serialization roundtrip
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(graphs())
def test_ntriples_roundtrip(graph):
    assert set(parse_ntriples(serialize_ntriples(graph))) == set(graph)


_literal_text = st.text(
    alphabet=string.ascii_letters + string.digits + ' .,;:!?"\\\n\t-_()[]{}éüπ', max_size=40
)


@COMMON_SETTINGS
@given(_literal_text)
def test_literal_escaping_roundtrip(text):
    graph = RDFGraph([Triple(EX.s, EX.p, Literal(text))])
    parsed = parse_ntriples(serialize_ntriples(graph))
    assert set(parsed) == set(graph)


# ----------------------------------------------------------------------
# union-find invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=50))
def test_unionfind_groups_partition(pairs):
    union = UnionFind(range(21))
    for first, second in pairs:
        union.union(first, second)
    groups = union.groups()
    seen = set()
    for group in groups:
        assert not (seen & group)
        seen |= group
    assert seen == set(range(21))
    assert union.set_count == len(groups)
