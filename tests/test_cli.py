"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io.ntriples import dump_ntriples, load_ntriples
from repro.datasets.sample import figure2_graph


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.nt"
    dump_ntriples(figure2_graph(), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_defaults(self, fig2_file):
        args = build_parser().parse_args(["summarize", str(fig2_file)])
        assert args.kind == "weak"
        assert args.output is None


class TestSummarizeCommand:
    def test_prints_summary_sizes(self, fig2_file, capsys):
        assert main(["summarize", str(fig2_file), "--kind", "weak"]) == 0
        output = capsys.readouterr().out
        assert "weak summary" in output
        assert "9 nodes" in output

    def test_writes_ntriples_output(self, fig2_file, tmp_path, capsys):
        out = tmp_path / "summary.nt"
        assert main(["summarize", str(fig2_file), "--kind", "strong", "-o", str(out)]) == 0
        assert len(load_ntriples(out)) == 12

    def test_writes_dot_output(self, fig2_file, tmp_path):
        out = tmp_path / "summary.dot"
        assert main(["summarize", str(fig2_file), "--dot", "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph")


class TestOtherCommands:
    def test_stats(self, fig2_file, capsys):
        assert main(["stats", str(fig2_file)]) == 0
        output = capsys.readouterr().out
        assert "edge_count" in output
        assert "typed_strong" in output

    def test_saturate(self, tmp_path, capsys):
        from repro.datasets.sample import book_example_graph

        source = tmp_path / "book.nt"
        dump_ntriples(book_example_graph(), source)
        target = tmp_path / "book_sat.nt"
        assert main(["saturate", str(source), "-o", str(target)]) == 0
        assert len(load_ntriples(target)) > len(load_ntriples(source))

    def test_generate_bsbm(self, tmp_path, capsys):
        target = tmp_path / "bsbm.nt"
        assert main(["generate", "bsbm", "--scale", "10", "-o", str(target)]) == 0
        assert len(load_ntriples(target)) > 100

    def test_generate_bibliography(self, tmp_path):
        target = tmp_path / "bib.nt"
        assert main(["generate", "bibliography", "--scale", "20", "-o", str(target)]) == 0
        assert target.exists()

    def test_sweep(self, capsys):
        assert main(["sweep", "--scales", "10", "20"]) == 0
        output = capsys.readouterr().out
        assert "Figure 11" in output
        assert "Figure 13" in output
