"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io.ntriples import dump_ntriples, load_ntriples
from repro.datasets.sample import figure2_graph


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.nt"
    dump_ntriples(figure2_graph(), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summarize_defaults(self, fig2_file):
        args = build_parser().parse_args(["summarize", str(fig2_file)])
        assert args.kind == "weak"
        assert args.output is None


class TestSummarizeCommand:
    def test_prints_summary_sizes(self, fig2_file, capsys):
        assert main(["summarize", str(fig2_file), "--kind", "weak"]) == 0
        output = capsys.readouterr().out
        assert "weak summary" in output
        assert "9 nodes" in output

    def test_writes_ntriples_output(self, fig2_file, tmp_path, capsys):
        out = tmp_path / "summary.nt"
        assert main(["summarize", str(fig2_file), "--kind", "strong", "-o", str(out)]) == 0
        assert len(load_ntriples(out)) == 12

    def test_writes_dot_output(self, fig2_file, tmp_path):
        out = tmp_path / "summary.dot"
        assert main(["summarize", str(fig2_file), "--dot", "-o", str(out)]) == 0
        assert out.read_text().startswith("digraph")


class TestOtherCommands:
    def test_stats(self, fig2_file, capsys):
        assert main(["stats", str(fig2_file)]) == 0
        output = capsys.readouterr().out
        assert "edge_count" in output
        assert "typed_strong" in output

    def test_saturate(self, tmp_path, capsys):
        from repro.datasets.sample import book_example_graph

        source = tmp_path / "book.nt"
        dump_ntriples(book_example_graph(), source)
        target = tmp_path / "book_sat.nt"
        assert main(["saturate", str(source), "-o", str(target)]) == 0
        assert len(load_ntriples(target)) > len(load_ntriples(source))

    def test_generate_bsbm(self, tmp_path, capsys):
        target = tmp_path / "bsbm.nt"
        assert main(["generate", "bsbm", "--scale", "10", "-o", str(target)]) == 0
        assert len(load_ntriples(target)) > 100

    def test_generate_bibliography(self, tmp_path):
        target = tmp_path / "bib.nt"
        assert main(["generate", "bibliography", "--scale", "20", "-o", str(target)]) == 0
        assert target.exists()

    def test_sweep(self, capsys):
        assert main(["sweep", "--scales", "10", "20"]) == 0
        output = capsys.readouterr().out
        assert "Figure 11" in output
        assert "Figure 13" in output


class TestQueryCommand:
    def test_single_query_with_answers(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--query",
                    "PREFIX f: <http://example.org/fig2/> SELECT ?x WHERE { ?x f:author ?a }",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "answer(s)" in output

    def test_unsatisfiable_ask_is_pruned(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--query",
                    "ASK { ?x <http://example.org/fig2/cites> ?y }",
                ]
            )
            == 0
        )
        assert "pruned" in capsys.readouterr().out

    def test_query_file_input(self, fig2_file, tmp_path, capsys):
        query_file = tmp_path / "q.rq"
        query_file.write_text(
            "PREFIX f: <http://example.org/fig2/> ASK { ?x f:author ?a }"
        )
        assert main(["query", str(fig2_file), "--query-file", str(query_file)]) == 0
        assert "yes" in capsys.readouterr().out

    def test_mixed_term_kinds_in_answers_print(self, tmp_path, capsys):
        # answers mixing URIs and literals in one column must not crash sorting
        from repro.model.graph import RDFGraph
        from repro.model.namespaces import EX
        from repro.model.terms import Literal
        from repro.model.triple import Triple

        graph = RDFGraph(
            [Triple(EX.a, EX.p, EX.b), Triple(EX.c, EX.p, Literal("v"))]
        )
        path = tmp_path / "mixed.nt"
        dump_ntriples(graph, path)
        assert (
            main(
                [
                    "query",
                    str(path),
                    "--query",
                    "SELECT ?y WHERE { ?x <http://example.org/p> ?y }",
                ]
            )
            == 0
        )
        assert "2 answer(s)" in capsys.readouterr().out

    def test_workload_rejects_single_query_flags(self, fig2_file, capsys):
        assert main(["query", str(fig2_file), "--workload", "4", "--saturated"]) == 2
        assert main(["query", str(fig2_file), "--workload", "4", "--no-prune"]) == 2

    def test_workload_mode_writes_json(self, fig2_file, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--workload",
                    "8",
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "speedup" in output
        report = json.loads(report_path.read_text())
        assert report["sound"] is True
        assert report["queries"] == 8


class TestQueryStrategyAndExplain:
    def test_strategy_choices(self, fig2_file):
        args = build_parser().parse_args(["query", str(fig2_file), "--query", "ASK { ?x ?p ?y }"])
        assert args.strategy == "hash"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", str(fig2_file), "--query", "q", "--strategy", "bogus"]
            )

    def test_nested_strategy_answers(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--strategy",
                    "nested",
                    "--query",
                    "PREFIX f: <http://example.org/fig2/> SELECT ?x WHERE { ?x f:author ?a }",
                ]
            )
            == 0
        )
        assert "answer(s)" in capsys.readouterr().out

    def test_merge_strategy_answers(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--strategy",
                    "merge",
                    "--query",
                    "PREFIX f: <http://example.org/fig2/> SELECT ?x WHERE { ?x f:author ?a }",
                ]
            )
            == 0
        )
        assert "answer(s)" in capsys.readouterr().out

    def test_merge_explain_reports_per_stage_algorithm(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--strategy",
                    "merge",
                    "--explain",
                    "--query",
                    "PREFIX f: <http://example.org/fig2/> "
                    "SELECT ?x ?a WHERE { ?x f:author ?a . ?x a f:Book }",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "explain (strategy: merge)" in output
        assert "join merge" in output

    def test_workload_mode_accepts_merge(self, fig2_file, capsys):
        assert (
            main(["query", str(fig2_file), "--workload", "6", "--strategy", "merge"])
            == 0
        )
        assert "speedup" in capsys.readouterr().out

    def test_explain_prints_plan_and_guard_cascade(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--explain",
                    "--query",
                    "PREFIX f: <http://example.org/fig2/> "
                    "SELECT ?x ?a WHERE { ?x f:author ?a . ?x a f:Book }",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "explain (strategy: hash)" in output
        assert "guard cascade" in output
        assert "plan" in output
        assert "est" in output and "actual" in output

    def test_explain_on_pruned_query(self, fig2_file, capsys):
        assert (
            main(
                [
                    "query",
                    str(fig2_file),
                    "--explain",
                    "--query",
                    "ASK { ?x <http://example.org/fig2/cites> ?y }",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "pruned by" in output
        assert "base evaluation skipped" in output

    def test_workload_mode_accepts_strategy(self, fig2_file, capsys):
        assert (
            main(
                ["query", str(fig2_file), "--workload", "6", "--strategy", "nested"]
            )
            == 0
        )
        assert "speedup" in capsys.readouterr().out
