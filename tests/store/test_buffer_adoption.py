"""Zero-copy buffer adoption: ``MemoryStore.adopt_column_buffers`` and the
``ColumnView`` columns it installs — equivalence with a copying load,
aliasing (true zero copy), private delta tails, the byteswap fallback,
memory accounting, and release-on-close hygiene."""

import sys
from array import array

import pytest

from repro.model.triple import TripleKind
from repro.store.base import ColumnView
from repro.store.memory import MemoryStore


FOREIGN = "big" if sys.byteorder == "little" else "little"


def _columns(rows):
    """rows -> (s_bytes, p_bytes, o_bytes) native int64 blobs."""
    blobs = []
    for index in range(3):
        column = array("q", (row[index] for row in rows))
        blobs.append(column.tobytes())
    return tuple(blobs)


def _rows(count, salt=0):
    return [(i % 17 + salt, i % 5, i * 3 + salt) for i in range(count)]


def _adopted(rows, kind=TripleKind.DATA):
    store = MemoryStore()
    s_bytes, p_bytes, o_bytes = _columns(rows)
    adopted = store.adopt_column_buffers(kind, s_bytes, p_bytes, o_bytes)
    assert adopted == len(rows)
    return store


class TestColumnView:
    def test_sequence_protocol(self):
        base = array("q", range(10)).tobytes()
        view = ColumnView(memoryview(base))
        view.extend([100, 101])
        assert len(view) == 12
        assert view[0] == 0 and view[9] == 9 and view[10] == 100
        assert view[-1] == 101 and view[-3] == 9
        assert list(view) == list(range(10)) + [100, 101]
        assert view[2:12:3] == array("q", [2, 5, 8, 101])
        assert view[8:11] == array("q", [8, 9, 100])
        assert view.tobytes() == array("q", list(range(10)) + [100, 101]).tobytes()
        assert view.base_nbytes == 80 and view.tail_nbytes == 16
        view.release()
        assert len(view) == 2  # only the private tail survives a release

    def test_empty_base(self):
        view = ColumnView(memoryview(b""))
        assert len(view) == 0
        view.append(7)
        assert list(view) == [7]


class TestAdoption:
    def test_matches_copying_load(self):
        rows = _rows(200)
        adopted = _adopted(rows)
        copied = MemoryStore()
        copied.load_column_bytes(TripleKind.DATA, *_columns(rows))
        got = [
            row for batch in adopted.scan_batches(TripleKind.DATA) for row in batch
        ]
        want = [
            row for batch in copied.scan_batches(TripleKind.DATA) for row in batch
        ]
        assert got == want
        # index behaviour is identical: sorted runs agree on every predicate
        for predicate in {row[1] for row in rows}:
            fast = adopted.sorted_run(TripleKind.DATA, predicate, by_object=False)
            slow = copied.sorted_run(TripleKind.DATA, predicate, by_object=False)
            assert list(fast.column_values(0)) == list(slow.column_values(0))
            assert list(fast.column_values(2)) == list(slow.column_values(2))
        assert sorted(adopted.select_many(TripleKind.DATA, subjects=[3], predicate=1)) == sorted(
            copied.select_many(TripleKind.DATA, subjects=[3], predicate=1)
        )
        adopted.close()
        copied.close()

    def test_is_zero_copy(self):
        """The store reads through the caller's buffer — no private copy."""
        rows = _rows(8)
        s_bytes, p_bytes, o_bytes = _columns(rows)
        shared = bytearray(s_bytes)  # mutable so aliasing is observable
        store = MemoryStore()
        store.adopt_column_buffers(TripleKind.DATA, shared, p_bytes, o_bytes)
        before = [batch for batch in store.scan_batches(TripleKind.DATA)][0][0]
        shared[0:8] = array("q", [999]).tobytes()
        after = [batch for batch in store.scan_batches(TripleKind.DATA)][0][0]
        assert before[0] == rows[0][0] and after[0] == 999
        store.close()

    def test_private_tail_takes_deltas(self):
        rows = _rows(50)
        store = _adopted(rows)
        store.insert_encoded_rows([(TripleKind.DATA, (1000, 1, 1001))])
        got = {row for batch in store.scan_batches(TripleKind.DATA) for row in batch}
        assert (1000, 1, 1001) in got and len(got) == len(set(rows)) + 1
        memory = store.column_memory()
        assert memory["private_bytes"] > 0  # the tail
        store.close()

    def test_memory_accounting(self):
        rows = _rows(100)
        store = _adopted(rows)
        memory = store.column_memory()
        assert memory["adopted_bytes"] == 100 * 8 * 3
        assert memory["private_bytes"] == 0
        plain = MemoryStore()
        plain.load_column_bytes(TripleKind.DATA, *_columns(rows))
        assert plain.column_memory() == {
            "private_bytes": 100 * 8 * 3,
            "adopted_bytes": 0,
        }
        store.close()
        plain.close()

    def test_rejects_ragged_buffers(self):
        s_bytes, p_bytes, o_bytes = _columns(_rows(4))
        store = MemoryStore()
        with pytest.raises(ValueError):
            store.adopt_column_buffers(TripleKind.DATA, s_bytes[:-8], p_bytes, o_bytes)
        with pytest.raises(ValueError):
            store.adopt_column_buffers(TripleKind.DATA, s_bytes[:-1], p_bytes, o_bytes)
        # failed adoptions leave the table empty and usable
        assert store.adopt_column_buffers(TripleKind.DATA, s_bytes, p_bytes, o_bytes)
        store.close()

    def test_rejects_non_empty_table(self):
        store = _adopted(_rows(4))
        with pytest.raises(ValueError):
            store.adopt_column_buffers(TripleKind.DATA, *_columns(_rows(4)))
        store.close()


class TestByteswapFallback:
    """Foreign-endian buffers cannot alias — they degrade to a copying
    load that byteswaps, and must produce identical rows."""

    def _foreign_columns(self, rows):
        blobs = []
        for index in range(3):
            column = array("q", (row[index] for row in rows))
            column.byteswap()
            blobs.append(column.tobytes())
        return tuple(blobs)

    def test_load_column_bytes_byteswaps(self):
        rows = _rows(32)
        store = MemoryStore()
        loaded = store.load_column_bytes(
            TripleKind.DATA, *self._foreign_columns(rows), byteorder=FOREIGN
        )
        assert loaded == len(rows)
        got = [row for batch in store.scan_batches(TripleKind.DATA) for row in batch]
        assert got == rows
        store.close()

    def test_adopt_falls_back_to_copy(self):
        rows = _rows(32)
        store = MemoryStore()
        adopted = store.adopt_column_buffers(
            TripleKind.DATA, *self._foreign_columns(rows), byteorder=FOREIGN
        )
        assert adopted == len(rows)
        got = [row for batch in store.scan_batches(TripleKind.DATA) for row in batch]
        assert got == rows
        # a byteswapped load owns its columns: nothing adopted
        assert store.column_memory()["adopted_bytes"] == 0
        store.close()


class TestRelease:
    def test_close_releases_adopted_views(self):
        rows = _rows(16)
        s_bytes, p_bytes, o_bytes = _columns(rows)
        shared = bytearray(s_bytes)
        store = MemoryStore()
        store.adopt_column_buffers(TripleKind.DATA, shared, p_bytes, o_bytes)
        with pytest.raises(BufferError):
            shared.extend(b"\x00" * 8)  # exported views pin the buffer
        store.close()
        shared.extend(b"\x00" * 8)  # released: the owner may resize again

    def test_close_is_idempotent(self):
        store = _adopted(_rows(4))
        store.close()
        store.close()
