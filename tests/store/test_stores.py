"""Tests for the MemoryStore and SQLiteStore backends (shared contract)."""

import pytest

from repro.errors import StoreClosedError, StoreError
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE, RDFS_SUBCLASSOF
from repro.model.terms import Literal
from repro.model.triple import Triple, TripleKind
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


BACKENDS = [MemoryStore, SQLiteStore]


def _sample_graph():
    return RDFGraph(
        [
            Triple(EX.r1, EX.author, EX.a1),
            Triple(EX.r1, EX.title, Literal("t1")),
            Triple(EX.r2, EX.title, Literal("t2")),
            Triple(EX.r1, RDF_TYPE, EX.Book),
            Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication),
        ]
    )


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def store(request):
    instance = request.param()
    yield instance
    instance.close()


class TestLoading:
    def test_load_graph_counts_triples(self, store):
        assert store.load_graph(_sample_graph()) == 5

    def test_rows_split_into_tables(self, store):
        store.load_graph(_sample_graph())
        assert store.count(TripleKind.DATA) == 3
        assert store.count(TripleKind.TYPE) == 1
        assert store.count(TripleKind.SCHEMA) == 1

    def test_load_triples_iterable(self, store):
        store.load_triples([Triple(EX.a, EX.p, EX.b)])
        assert store.count(TripleKind.DATA) == 1

    def test_statistics(self, store):
        store.load_graph(_sample_graph())
        statistics = store.statistics()
        assert statistics.total_rows == 5
        assert statistics.dictionary_size == len(store.dictionary)


class TestScansAndSelects:
    def test_scan_data_roundtrip(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        decoded = {store.decode_triple(row) for row in store.scan_data()}
        assert decoded == set(graph.data_triples)

    def test_scan_types_and_schema(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        assert {store.decode_triple(r) for r in store.scan_types()} == set(graph.type_triples)
        assert {store.decode_triple(r) for r in store.scan_schema()} == set(graph.schema_triples)

    def test_select_by_subject(self, store):
        store.load_graph(_sample_graph())
        subject_id = store.dictionary.encode_existing(EX.r1)
        rows = list(store.select(TripleKind.DATA, subject=subject_id))
        assert len(rows) == 2

    def test_select_by_predicate(self, store):
        store.load_graph(_sample_graph())
        predicate_id = store.dictionary.encode_existing(EX.title)
        rows = list(store.select(TripleKind.DATA, predicate=predicate_id))
        assert len(rows) == 2

    def test_select_combined(self, store):
        store.load_graph(_sample_graph())
        subject_id = store.dictionary.encode_existing(EX.r1)
        predicate_id = store.dictionary.encode_existing(EX.title)
        rows = list(store.select(TripleKind.DATA, subject=subject_id, predicate=predicate_id))
        assert len(rows) == 1

    def test_distinct_properties(self, store):
        store.load_graph(_sample_graph())
        properties = {
            store.decode_term(identifier)
            for identifier in store.distinct_properties(TripleKind.DATA)
        }
        assert properties == {EX.author, EX.title}

    def test_to_graph_roundtrip(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        assert set(store.to_graph()) == set(graph)


class TestLifecycle:
    def test_context_manager_closes(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
        with pytest.raises(StoreClosedError):
            list(store.scan_data())

    def test_sqlite_closed_raises(self):
        store = SQLiteStore()
        store.close()
        with pytest.raises(StoreClosedError):
            store.count(TripleKind.DATA)

    def test_memory_duplicate_rows_deduplicated(self):
        store = MemoryStore()
        graph = _sample_graph()
        store.load_graph(graph)
        store.load_graph(graph)
        assert store.count(TripleKind.DATA) == 3

    def test_sqlite_file_backend(self, tmp_path):
        path = tmp_path / "triples.db"
        store = SQLiteStore(path=str(path))
        store.load_graph(_sample_graph())
        store.persist_dictionary()
        store.close()
        assert path.exists()

    def test_sqlite_invalid_batch_size(self):
        with pytest.raises(StoreError):
            SQLiteStore(batch_size=0)

    def test_sqlite_persist_dictionary_is_idempotent(self):
        store = SQLiteStore()
        store.load_graph(_sample_graph())
        first = store.persist_dictionary()
        second = store.persist_dictionary()
        assert first == second


class TestBatchedInsertion:
    """insert_triples: the batched encode+insert path shared by the catalog."""

    def test_returns_rows_in_input_order(self, fig2):
        from repro.model.triple import TripleKind

        triples = sorted(fig2)
        store = MemoryStore()
        rows = store.insert_triples(triples)
        assert len(rows) == len(triples)
        for triple, (kind, row) in zip(triples, rows):
            assert kind is triple.kind
            assert store.decode_triple(row) == triple

    def test_load_graph_delegates_to_batch_path(self, fig2):
        direct = MemoryStore()
        direct.load_graph(fig2)
        batched = MemoryStore()
        batched.insert_triples(sorted(fig2))
        assert direct.statistics().total_rows == batched.statistics().total_rows

    def test_encode_triples_matches_encode_triple(self, fig2):
        from repro.model.dictionary import Dictionary

        triples = sorted(fig2)
        one = Dictionary()
        rows_single = [one.encode_triple(triple) for triple in triples]
        many = Dictionary()
        rows_batch = many.encode_triples(triples)
        assert rows_single == rows_batch

    def test_incremental_inserts_share_dictionary_ids(self, fig2):
        triples = sorted(fig2)
        store = SQLiteStore()
        store.insert_triples(triples[: len(triples) // 2])
        before = len(store.dictionary)
        store.insert_triples(triples[len(triples) // 2 :])
        assert len(store.dictionary) >= before
        assert store.count(TripleKind.DATA) == len(fig2.data_triples)


class TestSelectShapesAndPostingLists:
    """Every bound select shape routes through an index (satellite bugfix)
    and iterates rows deterministically in insertion order."""

    def _loaded(self, store_class):
        store = store_class()
        triples = [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.a, EX.p, EX.c),
            Triple(EX.b, EX.p, EX.b),
            Triple(EX.a, EX.q, EX.b),
            Triple(EX.b, EX.q, EX.c),
        ]
        store.load_triples(triples)
        ids = {name: store.dictionary.encode_existing(getattr(EX, name)) for name in "abcpq"}
        return store, ids

    @pytest.mark.parametrize("store_class", [MemoryStore, SQLiteStore])
    def test_every_shape_filters_correctly(self, store_class):
        store, ids = self._loaded(store_class)
        rows = lambda **kw: {tuple(r) for r in store.select(TripleKind.DATA, **kw)}
        a, b, c, p, q = (ids[k] for k in "abcpq")
        assert rows(predicate=p) == {(a, p, b), (a, p, c), (b, p, b)}
        assert rows(subject=a, predicate=p) == {(a, p, b), (a, p, c)}
        assert rows(predicate=p, obj=b) == {(a, p, b), (b, p, b)}
        assert rows(subject=a, obj=b) == {(a, p, b), (a, q, b)}
        assert rows(subject=a, predicate=q, obj=b) == {(a, q, b)}
        assert rows(subject=a, predicate=p, obj=c) == {(a, p, c)}
        assert rows() == {(a, p, b), (a, p, c), (b, p, b), (a, q, b), (b, q, c)}
        store.close()

    def test_memory_select_is_insertion_ordered_per_shape(self):
        store, ids = self._loaded(MemoryStore)
        a, b, p = ids["a"], ids["b"], ids["p"]
        shapes = [
            dict(predicate=p),
            dict(subject=a),
            dict(obj=b),
            dict(subject=a, predicate=p),
            dict(predicate=p, obj=b),
            dict(subject=a, obj=b),
        ]
        for shape in shapes:
            listed = [tuple(r) for r in store.select(TripleKind.DATA, **shape)]
            assert listed == sorted(listed, key=lambda r: store._tables[TripleKind.DATA].rows.index(r))
            # repeated iteration yields the identical order
            assert listed == [tuple(r) for r in store.select(TripleKind.DATA, **shape)]

    def test_memory_bound_shapes_never_scan(self):
        """Bound shapes must touch only posting-list candidates."""
        store, ids = self._loaded(MemoryStore)
        table = store._tables[TripleKind.DATA]
        a, p, b = ids["a"], ids["p"], ids["b"]
        assert table._candidate_positions(None, p, None) is not None
        assert table._candidate_positions(a, p, None) is not None
        assert table._candidate_positions(None, p, b) is not None
        assert table._candidate_positions(a, None, b) is not None
        assert table._candidate_positions(a, None, None) is not None
        assert table._candidate_positions(None, None, b) is not None
        # composite lists are exact: no post-filter survivors dropped
        assert len(list(store.select(TripleKind.DATA, subject=a, predicate=p))) == 2
        # only the fully unbound shape scans
        assert table._candidate_positions(None, None, None) is None

    @pytest.mark.parametrize("store_class", [MemoryStore, SQLiteStore])
    def test_select_many_matches_per_value_selects(self, store_class):
        store, ids = self._loaded(store_class)
        a, b, c, p, q = (ids[k] for k in "abcpq")
        batched = {tuple(r) for r in store.select_many(TripleKind.DATA, subjects=[a, b], predicate=p)}
        single = {
            tuple(r)
            for s in (a, b)
            for r in store.select(TripleKind.DATA, subject=s, predicate=p)
        }
        assert batched == single
        by_objects = {tuple(r) for r in store.select_many(TripleKind.DATA, predicate=q, objects=[b, c])}
        assert by_objects == {(a, q, b), (b, q, c)}
        both = {
            tuple(r)
            for r in store.select_many(TripleKind.DATA, subjects=[a], predicate=p, objects=[b, c])
        }
        assert both == {(a, p, b), (a, p, c)}
        no_constraint = {tuple(r) for r in store.select_many(TripleKind.DATA, predicate=p)}
        assert no_constraint == {(a, p, b), (a, p, c), (b, p, b)}
        store.close()

    def test_sqlite_select_many_chunks_large_batches(self):
        store = SQLiteStore()
        triples = [Triple(EX.term(f"s{i}"), EX.p, EX.term(f"o{i}")) for i in range(1200)]
        store.load_triples(triples)
        p = store.dictionary.encode_existing(EX.p)
        subjects = [store.dictionary.encode_existing(EX.term(f"s{i}")) for i in range(1200)]
        rows = store.select_many(TripleKind.DATA, subjects=subjects, predicate=p)
        assert len(rows) == 1200
        store.close()
