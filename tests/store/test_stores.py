"""Tests for the MemoryStore and SQLiteStore backends (shared contract)."""

import pytest

from repro.errors import StoreClosedError, StoreError
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE, RDFS_SUBCLASSOF
from repro.model.terms import Literal
from repro.model.triple import Triple, TripleKind
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


BACKENDS = [MemoryStore, SQLiteStore]


def _sample_graph():
    return RDFGraph(
        [
            Triple(EX.r1, EX.author, EX.a1),
            Triple(EX.r1, EX.title, Literal("t1")),
            Triple(EX.r2, EX.title, Literal("t2")),
            Triple(EX.r1, RDF_TYPE, EX.Book),
            Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication),
        ]
    )


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def store(request):
    instance = request.param()
    yield instance
    instance.close()


class TestLoading:
    def test_load_graph_counts_triples(self, store):
        assert store.load_graph(_sample_graph()) == 5

    def test_rows_split_into_tables(self, store):
        store.load_graph(_sample_graph())
        assert store.count(TripleKind.DATA) == 3
        assert store.count(TripleKind.TYPE) == 1
        assert store.count(TripleKind.SCHEMA) == 1

    def test_load_triples_iterable(self, store):
        store.load_triples([Triple(EX.a, EX.p, EX.b)])
        assert store.count(TripleKind.DATA) == 1

    def test_statistics(self, store):
        store.load_graph(_sample_graph())
        statistics = store.statistics()
        assert statistics.total_rows == 5
        assert statistics.dictionary_size == len(store.dictionary)


class TestScansAndSelects:
    def test_scan_data_roundtrip(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        decoded = {store.decode_triple(row) for row in store.scan_data()}
        assert decoded == set(graph.data_triples)

    def test_scan_types_and_schema(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        assert {store.decode_triple(r) for r in store.scan_types()} == set(graph.type_triples)
        assert {store.decode_triple(r) for r in store.scan_schema()} == set(graph.schema_triples)

    def test_select_by_subject(self, store):
        store.load_graph(_sample_graph())
        subject_id = store.dictionary.encode_existing(EX.r1)
        rows = list(store.select(TripleKind.DATA, subject=subject_id))
        assert len(rows) == 2

    def test_select_by_predicate(self, store):
        store.load_graph(_sample_graph())
        predicate_id = store.dictionary.encode_existing(EX.title)
        rows = list(store.select(TripleKind.DATA, predicate=predicate_id))
        assert len(rows) == 2

    def test_select_combined(self, store):
        store.load_graph(_sample_graph())
        subject_id = store.dictionary.encode_existing(EX.r1)
        predicate_id = store.dictionary.encode_existing(EX.title)
        rows = list(store.select(TripleKind.DATA, subject=subject_id, predicate=predicate_id))
        assert len(rows) == 1

    def test_distinct_properties(self, store):
        store.load_graph(_sample_graph())
        properties = {
            store.decode_term(identifier)
            for identifier in store.distinct_properties(TripleKind.DATA)
        }
        assert properties == {EX.author, EX.title}

    def test_to_graph_roundtrip(self, store):
        graph = _sample_graph()
        store.load_graph(graph)
        assert set(store.to_graph()) == set(graph)


class TestLifecycle:
    def test_context_manager_closes(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
        with pytest.raises(StoreClosedError):
            list(store.scan_data())

    def test_sqlite_closed_raises(self):
        store = SQLiteStore()
        store.close()
        with pytest.raises(StoreClosedError):
            store.count(TripleKind.DATA)

    def test_memory_duplicate_rows_deduplicated(self):
        store = MemoryStore()
        graph = _sample_graph()
        store.load_graph(graph)
        store.load_graph(graph)
        assert store.count(TripleKind.DATA) == 3

    def test_sqlite_file_backend(self, tmp_path):
        path = tmp_path / "triples.db"
        store = SQLiteStore(path=str(path))
        store.load_graph(_sample_graph())
        store.persist_dictionary()
        store.close()
        assert path.exists()

    def test_sqlite_invalid_batch_size(self):
        with pytest.raises(StoreError):
            SQLiteStore(batch_size=0)

    def test_sqlite_persist_dictionary_is_idempotent(self):
        store = SQLiteStore()
        store.load_graph(_sample_graph())
        first = store.persist_dictionary()
        second = store.persist_dictionary()
        assert first == second


class TestBatchedInsertion:
    """insert_triples: the batched encode+insert path shared by the catalog."""

    def test_returns_rows_in_input_order(self, fig2):
        from repro.model.triple import TripleKind

        triples = sorted(fig2)
        store = MemoryStore()
        rows = store.insert_triples(triples)
        assert len(rows) == len(triples)
        for triple, (kind, row) in zip(triples, rows):
            assert kind is triple.kind
            assert store.decode_triple(row) == triple

    def test_load_graph_delegates_to_batch_path(self, fig2):
        direct = MemoryStore()
        direct.load_graph(fig2)
        batched = MemoryStore()
        batched.insert_triples(sorted(fig2))
        assert direct.statistics().total_rows == batched.statistics().total_rows

    def test_encode_triples_matches_encode_triple(self, fig2):
        from repro.model.dictionary import Dictionary

        triples = sorted(fig2)
        one = Dictionary()
        rows_single = [one.encode_triple(triple) for triple in triples]
        many = Dictionary()
        rows_batch = many.encode_triples(triples)
        assert rows_single == rows_batch

    def test_incremental_inserts_share_dictionary_ids(self, fig2):
        triples = sorted(fig2)
        store = SQLiteStore()
        store.insert_triples(triples[: len(triples) // 2])
        before = len(store.dictionary)
        store.insert_triples(triples[len(triples) // 2 :])
        assert len(store.dictionary) >= before
        assert store.count(TripleKind.DATA) == len(fig2.data_triples)
