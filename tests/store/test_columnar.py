"""Columnar data-plane tests: column scans, sorted runs, cross-backend contract."""

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple, TripleKind
from repro.store.base import SortedRun
from repro.store.memory import MemoryStore
from repro.store.reference import DictReferenceStore
from repro.store.sqlite import SQLiteStore


BACKENDS = [MemoryStore, SQLiteStore]


def _sample_graph():
    return RDFGraph(
        [
            Triple(EX.r1, EX.author, EX.a1),
            Triple(EX.r1, EX.author, EX.a2),
            Triple(EX.r2, EX.author, EX.a1),
            Triple(EX.r1, EX.title, EX.t1),
            Triple(EX.r2, EX.title, EX.t2),
            Triple(EX.a1, EX.wrote, EX.r1),
            Triple(EX.r1, RDF_TYPE, EX.Book),
            Triple(EX.r2, RDF_TYPE, EX.Book),
        ]
    )


@pytest.fixture(params=BACKENDS, ids=["memory", "sqlite"])
def store(request):
    instance = request.param()
    yield instance
    instance.close()


class TestScanColumns:
    def test_columns_match_row_scan(self, store):
        store.load_graph(_sample_graph())
        for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA):
            rows = [tuple(row) for batch in store.scan_batches(kind) for row in batch]
            columns = [
                (s, p, o)
                for s_arr, p_arr, o_arr in store.scan_columns(kind)
                for s, p, o in zip(s_arr, p_arr, o_arr)
            ]
            assert columns == rows

    def test_batch_size_respected(self, store):
        store.load_graph(_sample_graph())
        batches = list(store.scan_columns(TripleKind.DATA, batch_size=2))
        assert all(len(s) <= 2 for s, _p, _o in batches)
        assert sum(len(s) for s, _p, _o in batches) == store.count(TripleKind.DATA)

    def test_invalid_batch_size_rejected(self, store):
        store.load_graph(_sample_graph())
        with pytest.raises(ValueError):
            list(store.scan_columns(TripleKind.DATA, batch_size=0))


class TestSortedRun:
    def test_memory_run_is_sorted_and_complete(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            run = store.sorted_run(TripleKind.DATA, author)
            assert run is not None
            assert list(run.keys) == sorted(run.keys)
            expected = sorted(
                (row[0], row[2]) for row in store.select(TripleKind.DATA, predicate=author)
            )
            assert sorted(zip(run.keys, run.column_values(2))) == expected

    def test_by_object_run_keys_on_object(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            run = store.sorted_run(TripleKind.DATA, author, by_object=True)
            objects = sorted(row[2] for row in store.select(TripleKind.DATA, predicate=author))
            assert list(run.keys) == objects

    def test_unknown_predicate_returns_none(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            assert store.sorted_run(TripleKind.DATA, 10_000) is None

    def test_sqlite_keeps_no_runs(self):
        with SQLiteStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            assert store.sorted_run(TripleKind.DATA, author) is None

    def test_range_brackets_one_key(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            r1 = store.dictionary.encode_existing(EX.r1)
            run = store.sorted_run(TripleKind.DATA, author)
            start, stop = run.range(r1)
            assert stop - start == 2
            assert all(run.keys[i] == r1 for i in range(start, stop))

    def test_group_bounds_covers_every_key(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            run = store.sorted_run(TripleKind.DATA, author)
            bounds = run.group_bounds()
            assert set(bounds) == set(run.keys)
            for key, (start, stop) in bounds.items():
                assert run.range(key) == (start, stop)

    def test_caches_survive_repeat_lookups(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            run = store.sorted_run(TripleKind.DATA, author)
            assert run.column_values(2) is run.column_values(2)
            assert run.group_bounds() is run.group_bounds()

    def test_update_invalidates_run_caches(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            before = store.sorted_run(TripleKind.DATA, author)
            before_pairs = set(zip(before.keys, before.column_values(2)))
            count = store.load_triples([Triple(EX.r3, EX.author, EX.a2)])
            assert count == 1
            r3 = store.dictionary.encode_existing(EX.r3)
            a2 = store.dictionary.encode_existing(EX.a2)
            after = store.sorted_run(TripleKind.DATA, author)
            after_pairs = set(zip(after.keys, after.column_values(2)))
            assert after_pairs == before_pairs | {(r3, a2)}
            assert r3 in after.group_bounds()

    def test_base_default_run_is_none(self):
        with SQLiteStore() as store:
            store.load_graph(_sample_graph())
            assert store.sorted_run(TripleKind.TYPE, 0, by_object=True) is None


class TestIndexBuildObservability:
    def test_bulk_load_defers_then_builds_once(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            builds_after_load = store.index_build_count()
            author = store.dictionary.encode_existing(EX.author)
            list(store.select(TripleKind.DATA, predicate=author))
            first = store.index_build_count()
            list(store.select(TripleKind.DATA, predicate=author))
            r1 = store.dictionary.encode_existing(EX.r1)
            store.select_many(TripleKind.DATA, subjects=[r1], predicate=author)
            assert store.index_build_count() == first
            assert first >= builds_after_load

    def test_scan_never_forces_an_index_build(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA):
                for _batch in store.scan_columns(kind):
                    pass
            assert store.index_build_count() == 0


class TestCrossBackendContract:
    """MemoryStore, SQLiteStore and the dict oracle must agree observably."""

    def _encoded_rows(self, store):
        graph = _sample_graph()
        ids = {}
        rows = []
        for triple in graph:
            encoded = store.dictionary.encode_triple(triple)
            kind = (
                TripleKind.SCHEMA
                if triple.is_schema()
                else TripleKind.TYPE if triple.is_type() else TripleKind.DATA
            )
            rows.append((kind, encoded))
            ids[triple] = encoded
        return rows

    @pytest.mark.parametrize("factory", BACKENDS + [DictReferenceStore], ids=["memory", "sqlite", "dict"])
    def test_insert_encoded_rows_returns_fresh_rows(self, factory):
        with factory() as store:
            rows = self._encoded_rows(store)
            fresh = store.insert_encoded_rows(rows, skip_existing=True)
            assert [tuple(row) for _kind, row in fresh] == [tuple(row) for _kind, row in rows]
            again = store.insert_encoded_rows(rows, skip_existing=True)
            assert again == []

    @pytest.mark.parametrize("factory", BACKENDS + [DictReferenceStore], ids=["memory", "sqlite", "dict"])
    def test_in_batch_duplicates_inserted_once(self, factory):
        with factory() as store:
            rows = self._encoded_rows(store)
            fresh = store.insert_encoded_rows(rows + rows, skip_existing=True)
            assert len(fresh) == len(rows)
            assert store.count(TripleKind.DATA) == 6
            assert store.count(TripleKind.TYPE) == 2

    def test_len_and_counts_agree_across_backends(self):
        counts = {}
        for factory in BACKENDS:
            with factory() as store:
                store.load_graph(_sample_graph())
                counts[factory.__name__] = tuple(
                    store.count(kind)
                    for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)
                )
        assert len(set(counts.values())) == 1

    def test_scan_order_is_insertion_order_everywhere(self):
        orders = {}
        for factory in BACKENDS + [DictReferenceStore]:
            with factory() as store:
                rows = self._encoded_rows(store)
                store.insert_encoded_rows(rows, skip_existing=True)
                orders[factory.__name__] = [tuple(row) for row in store.scan_data()]
        reference = orders.pop("DictReferenceStore")
        for name, order in orders.items():
            assert order == reference, name


class TestSelectManyDedup:
    """Repeated key ids must not multiply result rows (regression)."""

    @pytest.mark.parametrize(
        "factory", BACKENDS + [DictReferenceStore], ids=["memory", "sqlite", "dict"]
    )
    def test_repeated_subjects_yield_each_row_once(self, factory):
        with factory() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            r1 = store.dictionary.encode_existing(EX.r1)
            once = store.select_many(TripleKind.DATA, subjects=[r1], predicate=author)
            repeated = store.select_many(
                TripleKind.DATA, subjects=[r1, r1, r1], predicate=author
            )
            assert sorted(map(tuple, repeated)) == sorted(map(tuple, once))
            assert len(list(once)) == 2

    @pytest.mark.parametrize(
        "factory", BACKENDS + [DictReferenceStore], ids=["memory", "sqlite", "dict"]
    )
    def test_repeated_objects_yield_each_row_once(self, factory):
        with factory() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            a1 = store.dictionary.encode_existing(EX.a1)
            once = store.select_many(TripleKind.DATA, objects=[a1], predicate=author)
            repeated = store.select_many(TripleKind.DATA, objects=[a1, a1], predicate=author)
            assert sorted(map(tuple, repeated)) == sorted(map(tuple, once))
            assert len(list(once)) == 2

    def test_base_fallback_path_deduplicates(self):
        """The TripleStore._select_many_fallback used by minimal backends."""
        with SQLiteStore() as store:
            store.load_graph(_sample_graph())
            author = store.dictionary.encode_existing(EX.author)
            r1 = store.dictionary.encode_existing(EX.r1)
            rows = list(
                store._select_many_fallback(
                    TripleKind.DATA, [r1, r1, r1], author, None
                )
            )
            assert len(rows) == 2


class TestColumnBlobs:
    def test_column_bytes_round_trip_byte_identical(self):
        with MemoryStore() as source:
            source.load_graph(_sample_graph())
            blobs = {
                kind: source.column_bytes(kind)
                for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)
            }
            with MemoryStore() as restored:
                for term, identifier in source.dictionary.items():
                    assert restored.dictionary.encode(term) == identifier
                for kind, (count, s, p, o) in blobs.items():
                    assert restored.load_column_bytes(kind, s, p, o) == count
                assert restored.index_build_count() == 0
                for kind in blobs:
                    assert restored.column_bytes(kind) == blobs[kind]
                assert [tuple(r) for r in restored.scan_data()] == [
                    tuple(r) for r in source.scan_data()
                ]

    def test_loaded_blobs_still_answer_selects(self):
        with MemoryStore() as source:
            source.load_graph(_sample_graph())
            author = source.dictionary.encode_existing(EX.author)
            r1 = source.dictionary.encode_existing(EX.r1)
            expected = sorted(map(tuple, source.select(TripleKind.DATA, predicate=author)))
            count, s, p, o = source.column_bytes(TripleKind.DATA)
            with MemoryStore() as restored:
                restored.load_column_bytes(TripleKind.DATA, s, p, o)
                got = sorted(map(tuple, restored.select(TripleKind.DATA, predicate=author)))
                assert got == expected
                assert len(restored.select_many(TripleKind.DATA, subjects=[r1])) == 3

    def test_load_into_nonempty_table_rejected(self):
        with MemoryStore() as store:
            store.load_graph(_sample_graph())
            count, s, p, o = store.column_bytes(TripleKind.DATA)
            with pytest.raises(Exception):
                store.load_column_bytes(TripleKind.DATA, s, p, o)

    def test_foreign_byteorder_swaps(self):
        import sys

        with MemoryStore() as source:
            source.load_graph(_sample_graph())
            count, s, p, o = source.column_bytes(TripleKind.DATA)
            other = "big" if sys.byteorder == "little" else "little"
            from array import array

            def swapped(blob):
                values = array("q")
                values.frombytes(blob)
                values.byteswap()
                return values.tobytes()

            with MemoryStore() as restored:
                loaded = restored.load_column_bytes(
                    TripleKind.DATA, swapped(s), swapped(p), swapped(o), byteorder=other
                )
                assert loaded == count
                assert restored.column_bytes(TripleKind.DATA) == (count, s, p, o)
