"""Thread-safety regression tests for the SQLite store.

The single shared connection of the original store was not safe to use
from more than one thread (shared lazy cursors interleave; sqlite3
connections themselves reject cross-thread use).  These tests hammer the
read paths from many threads at once — on a file-backed store (per-thread
read connections) and on an in-memory store (serialized under the
internal lock) — and race readers against a committing writer.
"""

import threading

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple, TripleKind
from repro.store.sqlite import SQLiteStore


def _graph(rows: int = 200) -> RDFGraph:
    triples = []
    for index in range(rows):
        triples.append(
            Triple(EX.term(f"s{index % 20}"), EX.term(f"p{index % 5}"), EX.term(f"o{index}"))
        )
        triples.append(Triple(EX.term(f"s{index % 20}"), RDF_TYPE, EX.term("C")))
    return RDFGraph(triples)


@pytest.fixture(params=["file", "memory"])
def store(request, tmp_path):
    path = str(tmp_path / "store.db") if request.param == "file" else ":memory:"
    store = SQLiteStore(path)
    store.load_graph(_graph())
    yield store
    store.close()


class TestConcurrentReads:
    def test_select_hammer(self, store):
        predicate = store.dictionary.encode_existing(EX.term("p0"))
        expected = sorted(store.select(TripleKind.DATA, predicate=predicate))
        assert expected
        errors, mismatches = [], []
        barrier = threading.Barrier(8, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(50):
                    rows = sorted(store.select(TripleKind.DATA, predicate=predicate))
                    if rows != expected:
                        mismatches.append(rows)
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert not mismatches

    def test_select_many_hammer(self, store):
        predicate = store.dictionary.encode_existing(EX.term("p1"))
        subjects = [
            store.dictionary.encode_existing(EX.term(f"s{index}")) for index in range(20)
        ]
        expected = sorted(
            store.select_many(TripleKind.DATA, subjects=subjects, predicate=predicate)
        )
        assert expected
        errors, mismatches = [], []
        barrier = threading.Barrier(8, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(30):
                    rows = sorted(
                        store.select_many(
                            TripleKind.DATA, subjects=subjects, predicate=predicate
                        )
                    )
                    if rows != expected:
                        mismatches.append(rows)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert not mismatches

    def test_scans_and_counts_from_threads(self, store):
        expected_count = store.count(TripleKind.DATA)
        errors = []
        barrier = threading.Barrier(4, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(10):
                    assert store.count(TripleKind.DATA) == expected_count
                    total = sum(len(batch) for batch in store.scan_batches(TripleKind.DATA, 64))
                    assert total == expected_count
                    assert store.distinct_properties(TripleKind.DATA)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors


class TestReadersDuringWrites:
    def test_readers_survive_a_committing_writer(self, store):
        """Readers only ever see committed row counts, never a crash."""
        predicate = store.dictionary.encode_existing(EX.term("p0"))
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    rows = list(store.select(TripleKind.DATA, predicate=predicate))
                    assert len(rows) >= 40  # the initial p0 rows
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for index in range(20):
                store.insert_triples(
                    [Triple(EX.term(f"w{index}"), EX.term("p0"), EX.term(f"wo{index}"))],
                    skip_existing=True,
                )
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        final = list(store.select(TripleKind.DATA, predicate=predicate))
        assert len(final) == 40 + 20

    def test_sql_join_pushdown_from_threads(self, store):
        """execute_join (the sql strategy's engine) is read-path safe too."""
        predicate = store.dictionary.encode_existing(EX.term("p0"))
        sql = "SELECT DISTINCT t0.s FROM data_triples AS t0 WHERE t0.p = ?"
        expected = sorted(store.execute_join(sql, (predicate,)))
        errors = []
        barrier = threading.Barrier(6, timeout=10)

        def worker():
            try:
                barrier.wait()
                for _ in range(40):
                    assert sorted(store.execute_join(sql, (predicate,))) == expected
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors


class TestReaderConnectionLifecycle:
    def test_dead_threads_release_their_connections(self, tmp_path):
        """One HTTP handler thread per request must not leak one sqlite
        connection per thread that ever existed (fd exhaustion)."""
        import gc

        store = SQLiteStore(str(tmp_path / "store.db"))
        store.load_graph(_graph(20))

        def touch():
            list(store.select(TripleKind.DATA))

        for _ in range(15):
            thread = threading.Thread(target=touch)
            thread.start()
            thread.join(timeout=10)
        del thread
        gc.collect()
        with store._readers_lock:
            alive = len(store._readers)
        assert alive <= 2  # the dead threads' finalizers reaped theirs
        store.close()


class TestLifecycle:
    def test_close_rejects_further_reads(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "store.db"))
        store.load_graph(_graph(10))
        store.close()
        from repro.errors import StoreClosedError

        with pytest.raises(StoreClosedError):
            list(store.select(TripleKind.DATA))

    def test_close_is_idempotent_with_reader_connections(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "store.db"))
        store.load_graph(_graph(10))
        done = threading.Event()

        def touch():
            list(store.select(TripleKind.DATA))
            done.set()

        thread = threading.Thread(target=touch)
        thread.start()
        thread.join(timeout=10)
        assert done.is_set()
        store.close()
        store.close()
