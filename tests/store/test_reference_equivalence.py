"""Property-based equivalence: columnar MemoryStore vs the dict oracle.

The pre-refactor dict-of-tuples store is kept verbatim in
:mod:`repro.store.reference` as :class:`DictReferenceStore`.  These tests
drive both stores through the same randomized interleaving of encoded
inserts and probes and require observational equivalence at every step —
row order included, since deterministic insertion-order iteration is part
of the store contract the summarizers rely on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.triple import TripleKind
from repro.store.memory import MemoryStore
from repro.store.reference import DictReferenceStore

KINDS = (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)

# a small id universe makes duplicate rows, repeated keys and shared
# subjects/objects common instead of vanishingly rare
ids = st.integers(min_value=0, max_value=12)
rows = st.tuples(st.sampled_from(KINDS), st.tuples(ids, ids, ids))
batches = st.lists(st.lists(rows, max_size=24), min_size=1, max_size=6)


def _assert_equivalent(columnar, oracle):
    for kind in KINDS:
        assert columnar.count(kind) == oracle.count(kind)
        assert columnar.distinct_properties(kind) == oracle.distinct_properties(kind)
    assert [tuple(r) for r in columnar.scan_data()] == [tuple(r) for r in oracle.scan_data()]
    assert [tuple(r) for r in columnar.scan_types()] == [tuple(r) for r in oracle.scan_types()]
    assert [tuple(r) for r in columnar.scan_schema()] == [
        tuple(r) for r in oracle.scan_schema()
    ]


@settings(max_examples=60, deadline=None, derandomize=True)
@given(batches=batches)
def test_interleaved_inserts_stay_equivalent(batches):
    with MemoryStore() as columnar, DictReferenceStore() as oracle:
        for batch in batches:
            fresh_columnar = columnar.insert_encoded_rows(batch, skip_existing=True)
            fresh_oracle = oracle.insert_encoded_rows(batch, skip_existing=True)
            assert [(kind, tuple(row)) for kind, row in fresh_columnar] == [
                (kind, tuple(row)) for kind, row in fresh_oracle
            ]
            _assert_equivalent(columnar, oracle)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(batches=batches, probes=st.lists(st.tuples(ids, ids, ids), max_size=12))
def test_selects_agree_after_every_batch(batches, probes):
    with MemoryStore() as columnar, DictReferenceStore() as oracle:
        for batch in batches:
            columnar.insert_encoded_rows(batch, skip_existing=True)
            oracle.insert_encoded_rows(batch, skip_existing=True)
            for subject, predicate, obj in probes:
                for kind in (TripleKind.DATA, TripleKind.TYPE):
                    for shape in (
                        dict(subject=subject),
                        dict(predicate=predicate),
                        dict(obj=obj),
                        dict(subject=subject, predicate=predicate),
                        dict(predicate=predicate, obj=obj),
                        dict(subject=subject, predicate=predicate, obj=obj),
                    ):
                        got = [tuple(r) for r in columnar.select(kind, **shape)]
                        expected = [tuple(r) for r in oracle.select(kind, **shape)]
                        assert got == expected, (kind, shape)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(
    batches=batches,
    subjects=st.lists(ids, max_size=8),
    objects=st.lists(ids, max_size=8),
    predicate=st.one_of(st.none(), ids),
)
def test_select_many_agrees_with_oracle(batches, subjects, objects, predicate):
    with MemoryStore() as columnar, DictReferenceStore() as oracle:
        for batch in batches:
            columnar.insert_encoded_rows(batch, skip_existing=True)
            oracle.insert_encoded_rows(batch, skip_existing=True)
        for kwargs in (
            dict(subjects=subjects, predicate=predicate),
            dict(objects=objects, predicate=predicate),
            dict(subjects=subjects, objects=objects, predicate=predicate),
            dict(predicate=predicate),
        ):
            got = [tuple(r) for r in columnar.select_many(TripleKind.DATA, **kwargs)]
            expected = [tuple(r) for r in oracle.select_many(TripleKind.DATA, **kwargs)]
            assert sorted(got) == sorted(expected), kwargs


@settings(max_examples=40, deadline=None, derandomize=True)
@given(batches=batches)
def test_sorted_runs_enumerate_exactly_the_selected_rows(batches):
    with MemoryStore() as columnar, DictReferenceStore() as oracle:
        for batch in batches:
            columnar.insert_encoded_rows(batch, skip_existing=True)
            oracle.insert_encoded_rows(batch, skip_existing=True)
            for kind in (TripleKind.DATA, TripleKind.TYPE):
                for predicate in oracle.distinct_properties(kind):
                    run = columnar.sorted_run(kind, predicate)
                    expected = sorted(
                        (row[0], row[2]) for row in oracle.select(kind, predicate=predicate)
                    )
                    assert sorted(zip(run.keys, run.column_values(2))) == expected
                    dual = columnar.sorted_run(kind, predicate, by_object=True)
                    expected_dual = sorted(
                        (row[2], row[0]) for row in oracle.select(kind, predicate=predicate)
                    )
                    assert sorted(zip(dual.keys, dual.column_values(0))) == expected_dual
