"""Tests for RDFGraph: components, indexes, node kinds, statistics."""

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE, RDFS_SUBCLASSOF
from repro.model.terms import Literal
from repro.model.triple import Triple


def _small_graph():
    graph = RDFGraph(name="small")
    graph.add_all(
        [
            Triple(EX.r1, EX.author, EX.a1),
            Triple(EX.r1, EX.title, Literal("t")),
            Triple(EX.r2, EX.title, Literal("u")),
            Triple(EX.r1, RDF_TYPE, EX.Book),
            Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication),
        ]
    )
    return graph


class TestMutation:
    def test_add_returns_true_for_new(self):
        graph = RDFGraph()
        assert graph.add(Triple(EX.s, EX.p, EX.o)) is True

    def test_add_duplicate_returns_false(self):
        graph = RDFGraph()
        triple = Triple(EX.s, EX.p, EX.o)
        graph.add(triple)
        assert graph.add(triple) is False
        assert len(graph) == 1

    def test_add_triple_convenience(self):
        graph = RDFGraph()
        assert graph.add_triple(EX.s, EX.p, Literal("x"))
        assert len(graph) == 1

    def test_add_all_counts_new_only(self):
        graph = RDFGraph()
        triples = [Triple(EX.s, EX.p, EX.o), Triple(EX.s, EX.p, EX.o), Triple(EX.s, EX.q, EX.o)]
        assert graph.add_all(triples) == 2

    def test_discard_removes_triple_and_indexes(self):
        graph = _small_graph()
        triple = Triple(EX.r1, EX.author, EX.a1)
        assert graph.discard(triple) is True
        assert triple not in graph
        assert list(graph.triples(predicate=EX.author)) == []

    def test_discard_missing_returns_false(self):
        graph = RDFGraph()
        assert graph.discard(Triple(EX.s, EX.p, EX.o)) is False

    def test_discard_type_triple_updates_types(self):
        graph = _small_graph()
        graph.discard(Triple(EX.r1, RDF_TYPE, EX.Book))
        assert graph.types_of(EX.r1) == set()

    def test_copy_is_independent(self):
        graph = _small_graph()
        clone = graph.copy()
        clone.add(Triple(EX.z, EX.p, EX.o))
        assert len(clone) == len(graph) + 1


class TestComponents:
    def test_component_sizes(self):
        graph = _small_graph()
        assert len(graph.data_triples) == 3
        assert len(graph.type_triples) == 1
        assert len(graph.schema_triples) == 1

    def test_component_graphs_are_graphs(self):
        graph = _small_graph()
        assert len(graph.data_graph()) == 3
        assert len(graph.type_graph()) == 1
        assert len(graph.schema_graph()) == 1

    def test_union(self):
        first = RDFGraph([Triple(EX.a, EX.p, EX.b)])
        second = RDFGraph([Triple(EX.c, EX.p, EX.d)])
        assert len(first.union(second)) == 2


class TestMatching:
    def test_triples_by_subject(self):
        graph = _small_graph()
        assert len(list(graph.triples(subject=EX.r1))) == 3

    def test_triples_by_predicate(self):
        graph = _small_graph()
        assert len(list(graph.triples(predicate=EX.title))) == 2

    def test_triples_by_object(self):
        graph = _small_graph()
        assert len(list(graph.triples(obj=EX.a1))) == 1

    def test_triples_combined_pattern(self):
        graph = _small_graph()
        assert len(list(graph.triples(EX.r1, EX.title, None))) == 1
        assert len(list(graph.triples(EX.r2, EX.author, None))) == 0

    def test_subjects_objects_predicates(self):
        graph = _small_graph()
        assert EX.r1 in graph.subjects(predicate=EX.title)
        assert Literal("t") in graph.objects(subject=EX.r1, predicate=EX.title)
        assert EX.author in graph.predicates()

    def test_types_of(self):
        graph = _small_graph()
        assert graph.types_of(EX.r1) == {EX.Book}
        assert graph.types_of(EX.r2) == set()
        assert graph.has_type(EX.r1)
        assert not graph.has_type(EX.r2)


class TestNodeKinds:
    def test_data_nodes_include_literals_and_typed_subjects(self):
        graph = _small_graph()
        data_nodes = graph.data_nodes()
        assert EX.r1 in data_nodes
        assert Literal("t") in data_nodes
        assert EX.Book not in data_nodes

    def test_class_nodes(self):
        graph = _small_graph()
        assert graph.class_nodes() == {EX.Book}

    def test_property_nodes_from_schema(self):
        graph = RDFGraph(
            [
                Triple(EX.writtenBy, RDFS_SUBCLASSOF, EX.hasAuthor),
            ]
        )
        # subClassOf between properties is unusual but property_nodes only
        # tracks subPropertyOf / domain / range subjects-objects.
        assert graph.property_nodes() == set()

    def test_typed_and_untyped_resources(self):
        graph = _small_graph()
        assert graph.typed_resources() == {EX.r1}
        untyped = graph.untyped_resources()
        assert EX.r2 in untyped
        assert EX.r1 not in untyped

    def test_untyped_data_graph_excludes_typed_endpoints(self):
        graph = _small_graph()
        untyped_data = graph.untyped_data_graph()
        assert Triple(EX.r2, EX.title, Literal("u")) in untyped_data
        assert Triple(EX.r1, EX.author, EX.a1) not in untyped_data

    def test_data_properties(self):
        graph = _small_graph()
        assert graph.data_properties() == {EX.author, EX.title}


class TestStatistics:
    def test_edge_and_component_counts(self, fig2):
        statistics = fig2.statistics()
        assert statistics.edge_count == 16
        assert statistics.data_edge_count == 12
        assert statistics.type_edge_count == 4
        assert statistics.schema_edge_count == 0
        assert statistics.distinct_data_properties == 6
        assert statistics.distinct_classes == 3

    def test_statistics_as_dict_roundtrip(self):
        statistics = _small_graph().statistics()
        assert statistics.as_dict()["edge_count"] == 5

    def test_literals(self):
        graph = _small_graph()
        assert graph.literals() == {Literal("t"), Literal("u")}

    def test_well_behaved_graph(self, fig2):
        assert fig2.is_well_behaved()

    def test_not_well_behaved_when_class_used_as_property(self):
        graph = _small_graph()
        graph.add(Triple(EX.x, EX.Book, EX.y))
        assert not graph.is_well_behaved()
