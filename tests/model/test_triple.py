"""Tests for Triple construction, classification and rendering."""

import pytest

from repro.errors import MalformedTripleError
from repro.model.namespaces import EX, RDF_TYPE, RDFS_DOMAIN, RDFS_SUBCLASSOF
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import Triple, TripleKind, classify_triple


class TestConstruction:
    def test_valid_triple(self):
        triple = Triple(EX.s, EX.p, EX.o)
        assert triple.subject == EX.s
        assert triple.predicate == EX.p
        assert triple.object == EX.o

    def test_blank_subject_allowed(self):
        Triple(BlankNode("b"), EX.p, Literal("x"))

    def test_literal_subject_rejected_for_data_properties(self):
        with pytest.raises(MalformedTripleError):
            Triple(Literal("x"), EX.p, EX.o)

    def test_literal_subject_allowed_for_type_triples(self):
        # generalized type triples produced by saturation (range rule on
        # literal values) are accepted
        triple = Triple(Literal("1932"), RDF_TYPE, EX.Year)
        assert triple.is_type()

    def test_literal_predicate_rejected(self):
        with pytest.raises(MalformedTripleError):
            Triple(EX.s, Literal("p"), EX.o)

    def test_blank_predicate_rejected(self):
        with pytest.raises(MalformedTripleError):
            Triple(EX.s, BlankNode("p"), EX.o)

    def test_invalid_object_rejected(self):
        with pytest.raises(MalformedTripleError):
            Triple(EX.s, EX.p, 42)


class TestClassification:
    def test_data_triple(self):
        assert Triple(EX.s, EX.p, EX.o).kind is TripleKind.DATA

    def test_type_triple(self):
        assert Triple(EX.s, RDF_TYPE, EX.Book).kind is TripleKind.TYPE

    def test_schema_triple_subclass(self):
        assert Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication).kind is TripleKind.SCHEMA

    def test_schema_triple_domain(self):
        assert Triple(EX.p, RDFS_DOMAIN, EX.Book).kind is TripleKind.SCHEMA

    def test_kind_predicates(self):
        assert Triple(EX.s, EX.p, EX.o).is_data()
        assert Triple(EX.s, RDF_TYPE, EX.Book).is_type()
        assert Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication).is_schema()

    def test_classify_function_matches_property(self):
        triple = Triple(EX.s, RDF_TYPE, EX.Book)
        assert classify_triple(triple) is triple.kind


class TestValueSemantics:
    def test_equality_and_hash(self):
        first = Triple(EX.s, EX.p, Literal("x"))
        second = Triple(EX.s, EX.p, Literal("x"))
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_inequality(self):
        assert Triple(EX.s, EX.p, EX.o) != Triple(EX.s, EX.p, EX.o2)

    def test_iteration_unpacks_terms(self):
        subject, predicate, obj = Triple(EX.s, EX.p, EX.o)
        assert (subject, predicate, obj) == (EX.s, EX.p, EX.o)

    def test_sorting_is_deterministic(self):
        triples = [Triple(EX.b, EX.p, EX.o), Triple(EX.a, EX.p, EX.o)]
        assert sorted(triples)[0].subject == EX.a

    def test_n3_line(self):
        line = Triple(EX.s, EX.p, Literal("x")).n3()
        assert line.endswith(" .")
        assert "<http://example.org/s>" in line

    def test_as_tuple(self):
        assert Triple(EX.s, EX.p, EX.o).as_tuple() == (EX.s, EX.p, EX.o)
