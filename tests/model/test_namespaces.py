"""Tests for namespace helpers and the RDFS vocabulary constants."""

from repro.model.namespaces import (
    EX,
    RDF,
    RDF_TYPE,
    RDFS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_PROPERTIES,
    Namespace,
    is_schema_property,
    is_type_property,
)
from repro.model.terms import URI


class TestNamespace:
    def test_attribute_access_mints_uri(self):
        assert EX.Book == URI("http://example.org/Book")

    def test_item_access_mints_uri(self):
        assert EX["has title"] == URI("http://example.org/has title")

    def test_term_method(self):
        namespace = Namespace("http://x.org/")
        assert namespace.term("a").value == "http://x.org/a"

    def test_contains_uri(self):
        assert EX.Book in EX
        assert RDF_TYPE not in EX

    def test_private_attribute_raises(self):
        try:
            EX._private
        except AttributeError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected AttributeError")


class TestVocabulary:
    def test_rdf_type_uri(self):
        assert RDF_TYPE.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

    def test_schema_properties_are_the_four_constraints(self):
        assert SCHEMA_PROPERTIES == {
            RDFS_SUBCLASSOF,
            RDFS_SUBPROPERTYOF,
            RDFS_DOMAIN,
            RDFS_RANGE,
        }

    def test_is_schema_property(self):
        assert is_schema_property(RDFS_DOMAIN)
        assert not is_schema_property(RDF_TYPE)
        assert not is_schema_property(EX.author)

    def test_is_type_property(self):
        assert is_type_property(RDF_TYPE)
        assert not is_type_property(RDFS_SUBCLASSOF)

    def test_rdf_and_rdfs_prefixes(self):
        assert RDF.prefix.endswith("rdf-syntax-ns#")
        assert RDFS.prefix.endswith("rdf-schema#")
