"""Tests for RDF terms (URI, Literal, BlankNode)."""

import pytest

from repro.errors import MalformedTripleError
from repro.model.namespaces import XSD
from repro.model.terms import (
    URI,
    BlankNode,
    Literal,
    is_blank,
    is_literal,
    is_uri,
    term_sort_key,
)


class TestURI:
    def test_equality_and_hash(self):
        assert URI("http://example.org/a") == URI("http://example.org/a")
        assert hash(URI("http://example.org/a")) == hash(URI("http://example.org/a"))
        assert URI("http://example.org/a") != URI("http://example.org/b")

    def test_not_equal_to_other_kinds(self):
        assert URI("http://example.org/a") != Literal("http://example.org/a")
        assert URI("x") != BlankNode("x")

    def test_empty_value_rejected(self):
        with pytest.raises(MalformedTripleError):
            URI("")

    def test_non_string_rejected(self):
        with pytest.raises(MalformedTripleError):
            URI(42)

    def test_n3_rendering(self):
        assert URI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_local_name_after_hash(self):
        assert URI("http://example.org/vocab#Book").local_name == "Book"

    def test_local_name_after_slash(self):
        assert URI("http://example.org/Book").local_name == "Book"

    def test_local_name_without_separator(self):
        assert URI("urn-like-value").local_name == "urn-like-value"

    def test_ordering(self):
        assert URI("http://a") < URI("http://b")


class TestLiteral:
    def test_plain_literal_equality(self):
        assert Literal("abc") == Literal("abc")
        assert Literal("abc") != Literal("abd")

    def test_datatype_distinguishes(self):
        assert Literal("1", datatype=XSD.term("integer")) != Literal("1")

    def test_language_distinguishes(self):
        assert Literal("chat", language="fr") != Literal("chat", language="en")

    def test_datatype_and_language_exclusive(self):
        with pytest.raises(MalformedTripleError):
            Literal("x", datatype=XSD.term("string"), language="en")

    def test_non_string_lexical_coerced(self):
        assert Literal(1932).lexical == "1932"

    def test_datatype_string_coerced_to_uri(self):
        literal = Literal("1", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert isinstance(literal.datatype, URI)

    def test_n3_plain(self):
        assert Literal("abc").n3() == '"abc"'

    def test_n3_escaping(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_n3_language(self):
        assert Literal("chat", language="fr").n3() == '"chat"@fr'

    def test_n3_datatype(self):
        rendered = Literal("1", datatype=XSD.term("integer")).n3()
        assert rendered.startswith('"1"^^<')

    def test_hashable(self):
        assert len({Literal("a"), Literal("a"), Literal("b")}) == 2


class TestBlankNode:
    def test_label_equality(self):
        assert BlankNode("b1") == BlankNode("b1")
        assert BlankNode("b1") != BlankNode("b2")

    def test_auto_label_unique(self):
        assert BlankNode() != BlankNode()

    def test_empty_label_rejected(self):
        with pytest.raises(MalformedTripleError):
            BlankNode("")

    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"


class TestPredicates:
    def test_kind_predicates(self):
        assert is_uri(URI("http://a"))
        assert is_literal(Literal("x"))
        assert is_blank(BlankNode("b"))
        assert not is_uri(Literal("x"))
        assert not is_literal(BlankNode("b"))
        assert not is_blank(URI("http://a"))

    def test_sort_key_total_order(self):
        terms = [Literal("z"), URI("http://a"), BlankNode("m"), Literal("a", language="en")]
        ordered = sorted(terms, key=term_sort_key)
        assert isinstance(ordered[0], URI)
        assert isinstance(ordered[-1], Literal)

    def test_sort_key_rejects_non_terms(self):
        with pytest.raises(TypeError):
            term_sort_key("not a term")


class TestHashMemoization:
    """Terms memoize their hash (hot path of dictionary encoding)."""

    def test_equal_terms_hash_equal(self):
        assert hash(URI("http://e/a")) == hash(URI("http://e/a"))
        assert hash(Literal("v", datatype=URI("http://e/t"))) == hash(
            Literal("v", datatype=URI("http://e/t"))
        )
        assert hash(BlankNode("b")) == hash(BlankNode("b"))

    def test_distinct_kinds_hash_differently(self):
        # a URI and a literal with the same lexical form must not collide
        assert hash(URI("x")) != hash(Literal("x"))

    def test_memoized_hash_is_stable(self):
        term = URI("http://e/stable")
        assert hash(term) == hash(term) == term._hash

    def test_terms_usable_as_dict_keys_across_instances(self):
        mapping = {URI("http://e/k"): 1}
        assert mapping[URI("http://e/k")] == 1
