"""Tests for dictionary encoding and the encoded graph view."""

import pytest

from repro.errors import UnknownTermError
from repro.model.dictionary import Dictionary, EncodedGraphView, EncodedTriple
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE, RDFS_SUBCLASSOF
from repro.model.terms import Literal
from repro.model.triple import Triple


class TestDictionary:
    def test_encode_is_idempotent(self):
        dictionary = Dictionary()
        first = dictionary.encode(EX.a)
        second = dictionary.encode(EX.a)
        assert first == second
        assert len(dictionary) == 1

    def test_ids_are_dense_and_ordered(self):
        dictionary = Dictionary()
        assert dictionary.encode(EX.a) == 0
        assert dictionary.encode(EX.b) == 1
        assert dictionary.encode(Literal("x")) == 2

    def test_decode_roundtrip(self):
        dictionary = Dictionary()
        identifier = dictionary.encode(Literal("1932"))
        assert dictionary.decode(identifier) == Literal("1932")

    def test_decode_unknown_raises(self):
        with pytest.raises(UnknownTermError):
            Dictionary().decode(5)

    def test_try_decode_unknown_returns_none(self):
        assert Dictionary().try_decode(3) is None

    def test_encode_existing_raises_on_unknown(self):
        with pytest.raises(UnknownTermError):
            Dictionary().encode_existing(EX.a)

    def test_contains(self):
        dictionary = Dictionary()
        dictionary.encode(EX.a)
        assert EX.a in dictionary
        assert EX.b not in dictionary

    def test_triple_roundtrip(self):
        dictionary = Dictionary()
        triple = Triple(EX.s, EX.p, Literal("x"))
        assert dictionary.decode_triple(dictionary.encode_triple(triple)) == triple

    def test_items_ordered_by_id(self):
        dictionary = Dictionary()
        dictionary.encode(EX.a)
        dictionary.encode(EX.b)
        items = list(dictionary.items())
        assert items[0] == (EX.a, 0)
        assert items[1] == (EX.b, 1)


class TestEncodedGraphView:
    def _graph(self):
        return RDFGraph(
            [
                Triple(EX.r1, EX.author, EX.a1),
                Triple(EX.r1, RDF_TYPE, EX.Book),
                Triple(EX.Book, RDFS_SUBCLASSOF, EX.Publication),
            ]
        )

    def test_rows_split_by_component(self):
        view = EncodedGraphView(self._graph())
        assert len(view.data_rows) == 1
        assert len(view.type_rows) == 1
        assert len(view.schema_rows) == 1
        assert len(view) == 3

    def test_all_rows_roundtrip_through_dictionary(self):
        graph = self._graph()
        view = EncodedGraphView(graph)
        decoded = set(view.decode_rows(view.all_rows()))
        assert decoded == set(graph)

    def test_type_property_id_matches_dictionary(self):
        view = EncodedGraphView(self._graph())
        assert view.dictionary.decode(view.type_property_id) == RDF_TYPE

    def test_shared_dictionary_reused(self):
        shared = Dictionary()
        shared.encode(EX.r1)
        view = EncodedGraphView(self._graph(), dictionary=shared)
        assert view.dictionary is shared
        assert shared.encode(EX.r1) == 0

    def test_rows_are_sorted_for_determinism(self):
        view = EncodedGraphView(self._graph())
        assert view.data_rows == sorted(view.data_rows)
        assert all(isinstance(row, EncodedTriple) for row in view.data_rows)
