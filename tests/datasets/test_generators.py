"""Tests for the synthetic dataset generators (BSBM, LUBM, bibliography, random)."""

import pytest

from repro.datasets.bibliography import BIB, generate_bibliography
from repro.datasets.bsbm import BSBM, BSBMGenerator, generate_bsbm, graph_for_target_triples
from repro.datasets.lubm import LUBM, generate_lubm
from repro.datasets.random_graph import RandomGraphConfig, generate_random_graph


class TestBSBM:
    def test_deterministic_for_seed(self):
        assert set(generate_bsbm(scale=20, seed=3)) == set(generate_bsbm(scale=20, seed=3))

    def test_different_seeds_differ(self):
        assert set(generate_bsbm(scale=20, seed=1)) != set(generate_bsbm(scale=20, seed=2))

    def test_scale_grows_triples(self):
        small = generate_bsbm(scale=20, seed=0)
        large = generate_bsbm(scale=80, seed=0)
        assert len(large) > 2 * len(small)

    def test_expected_entity_types_present(self, bsbm_small):
        classes = {c.local_name for c in bsbm_small.class_nodes()}
        for expected in ("Product", "Producer", "Offer", "Review", "Person", "Vendor"):
            assert expected in classes

    def test_product_type_tree_in_schema(self, bsbm_small):
        assert len(bsbm_small.schema_triples) >= 10

    def test_products_have_two_types(self, bsbm_small):
        product0 = BSBM.term("Product0")
        assert len(bsbm_small.types_of(product0)) == 2

    def test_heterogeneity_optional_properties(self, bsbm_small):
        # rating3 is generated for ~25% of reviews only
        reviews = bsbm_small.subjects(predicate=BSBM.rating1)
        with_rating3 = bsbm_small.subjects(predicate=BSBM.rating3)
        assert 0 < len(with_rating3) < len(reviews)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            BSBMGenerator(scale=0)

    def test_graph_for_target_triples(self):
        graph = graph_for_target_triples(3000, seed=0)
        assert 1200 < len(graph) < 8000

    def test_well_behaved(self, bsbm_small):
        assert bsbm_small.is_well_behaved()


class TestLUBM:
    def test_deterministic(self):
        first = generate_lubm(universities=1, departments_per_university=1, seed=5)
        second = generate_lubm(universities=1, departments_per_university=1, seed=5)
        assert set(first) == set(second)

    def test_schema_richness(self, lubm_small):
        assert len(lubm_small.schema_triples) >= 20

    def test_expected_classes(self, lubm_small):
        classes = {c.local_name for c in lubm_small.class_nodes()}
        assert "Department" in classes
        assert "University" in classes
        assert classes & {"FullProfessor", "AssociateProfessor", "AssistantProfessor", "Lecturer"}

    def test_university_count_scales_size(self):
        one = generate_lubm(universities=1, departments_per_university=2, seed=0)
        two = generate_lubm(universities=2, departments_per_university=2, seed=0)
        assert len(two) > len(one)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_lubm(universities=0)

    def test_saturation_adds_triples(self, lubm_small):
        from repro.schema.saturation import saturate

        assert len(saturate(lubm_small)) > len(lubm_small)


class TestBibliography:
    def test_deterministic(self):
        assert set(generate_bibliography(40, seed=2)) == set(generate_bibliography(40, seed=2))

    def test_untyped_fraction_respected(self):
        fully_typed = generate_bibliography(100, untyped_fraction=0.0, seed=1)
        untyped_publications = [
            node
            for node in fully_typed.subjects(predicate=BIB.hasTitle)
            if not fully_typed.has_type(node)
        ]
        assert untyped_publications == []

        partially_typed = generate_bibliography(100, untyped_fraction=0.5, seed=1)
        untyped_publications = [
            node
            for node in partially_typed.subjects(predicate=BIB.hasTitle)
            if not partially_typed.has_type(node)
        ]
        assert untyped_publications

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_bibliography(0)
        with pytest.raises(ValueError):
            generate_bibliography(10, untyped_fraction=1.5)

    def test_schema_constraints_present(self, bibliography_small):
        assert len(bibliography_small.schema_triples) >= 8


class TestRandomGraph:
    def test_deterministic(self):
        config = RandomGraphConfig()
        assert set(generate_random_graph(config, seed=4)) == set(generate_random_graph(config, seed=4))

    def test_respects_sizes(self):
        config = RandomGraphConfig(resources=10, properties=3, data_triples=25, schema_constraints=0)
        graph = generate_random_graph(config, seed=1)
        assert len(graph.data_properties()) <= 3
        assert len(graph.schema_triples) == 0

    def test_schema_less_configuration(self):
        config = RandomGraphConfig(schema_constraints=0, typed_fraction=0.0)
        graph = generate_random_graph(config, seed=2)
        assert len(graph.type_triples) == 0

    def test_literal_fraction_zero_gives_no_literals(self):
        config = RandomGraphConfig(literal_fraction=0.0)
        graph = generate_random_graph(config, seed=3)
        assert graph.literals() == set()

    def test_all_kinds_summarize_random_graphs(self):
        from repro.core.builders import summarize

        graph = generate_random_graph(RandomGraphConfig(), seed=6)
        for kind in ("weak", "strong", "type", "typed_weak", "typed_strong"):
            summary = summarize(graph, kind)
            assert len(summary.graph) <= len(graph)
