"""Tests for the paper's example graphs."""

from repro.datasets.sample import (
    FIG2,
    book_example_graph,
    figure2_graph,
    strong_completeness_graph,
    typed_weak_counterexample_graph,
    weak_completeness_graph,
)
from repro.model.namespaces import EX


class TestFigure2:
    def test_size(self):
        graph = figure2_graph()
        assert len(graph) == 16
        assert len(graph.data_triples) == 12
        assert len(graph.type_triples) == 4
        assert len(graph.schema_triples) == 0

    def test_data_properties_match_paper(self):
        graph = figure2_graph()
        names = {p.local_name for p in graph.data_properties()}
        assert names == {"author", "title", "editor", "comment", "reviewed", "published"}

    def test_classes(self):
        graph = figure2_graph()
        assert {c.local_name for c in graph.class_nodes()} == {"Book", "Journal", "Spec"}

    def test_r6_is_typed_only(self):
        graph = figure2_graph()
        assert graph.has_type(FIG2.r6)
        assert not list(graph.triples(subject=FIG2.r6, predicate=FIG2.title))

    def test_well_behaved(self):
        assert figure2_graph().is_well_behaved()

    def test_deterministic(self):
        assert set(figure2_graph()) == set(figure2_graph())


class TestBookExample:
    def test_with_schema(self):
        graph = book_example_graph()
        assert len(graph.schema_triples) == 4
        assert EX.doi1 in graph.typed_resources()

    def test_without_schema(self):
        graph = book_example_graph(with_schema=False)
        assert len(graph.schema_triples) == 0
        assert len(graph) == 5

    def test_literals_present(self):
        graph = book_example_graph()
        assert len(graph.literals()) == 3


class TestAuxiliaryGraphs:
    def test_weak_completeness_graph_has_subproperties(self):
        graph = weak_completeness_graph()
        assert len(graph.schema_triples) == 2

    def test_strong_completeness_graph_structure(self):
        graph = strong_completeness_graph()
        assert len(graph.data_triples) == 5
        assert len(graph.schema_triples) == 2

    def test_typed_weak_counterexample_has_domain_constraint(self):
        graph = typed_weak_counterexample_graph()
        assert len(graph.schema_triples) == 1
        assert len(graph.typed_resources()) == 0
