"""Tests for the store-level cardinality statistics (`repro.service.statistics`)."""

import pytest

from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple, TripleKind
from repro.service.statistics import CardinalityStatistics
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


def _small_triples():
    return [
        Triple(EX.a, EX.p, EX.b),
        Triple(EX.a, EX.p, EX.c),
        Triple(EX.b, EX.p, EX.c),
        Triple(EX.a, EX.q, EX.b),
        Triple(EX.a, RDF_TYPE, EX.C1),
        Triple(EX.b, RDF_TYPE, EX.C1),
        Triple(EX.c, RDF_TYPE, EX.C2),
    ]


class TestOnePassCollection:
    def test_per_predicate_counts(self, backend):
        store = backend()
        store.load_triples(_small_triples())
        statistics = CardinalityStatistics.from_store(store)
        p = store.dictionary.encode_existing(EX.p)
        q = store.dictionary.encode_existing(EX.q)
        assert statistics.predicate_rows(TripleKind.DATA, p) == 3
        assert statistics.predicate_rows(TripleKind.DATA, q) == 1
        assert statistics.distinct_subjects(TripleKind.DATA, p) == 2  # a, b
        assert statistics.distinct_objects(TripleKind.DATA, p) == 2  # b, c
        assert statistics.table_rows(TripleKind.DATA) == 4
        assert statistics.table_rows(TripleKind.TYPE) == 3
        assert statistics.table_rows(TripleKind.SCHEMA) == 0
        store.close()

    def test_class_membership_counts(self, backend):
        store = backend()
        store.load_triples(_small_triples())
        statistics = CardinalityStatistics.from_store(store)
        c1 = store.dictionary.encode_existing(EX.C1)
        c2 = store.dictionary.encode_existing(EX.C2)
        assert statistics.class_count(c1) == 2
        assert statistics.class_count(c2) == 1
        assert statistics.class_count(999_999) == 0
        store.close()

    def test_table_level_distincts(self, backend):
        store = backend()
        store.load_triples(_small_triples())
        statistics = CardinalityStatistics.from_store(store)
        assert statistics.distinct_subjects(TripleKind.DATA) == 2
        assert statistics.distinct_objects(TripleKind.DATA) == 2
        assert statistics.distinct_predicates(TripleKind.DATA) == 2
        store.close()

    def test_unknown_predicate_profile_is_none(self, backend):
        store = backend()
        store.load_triples(_small_triples())
        statistics = CardinalityStatistics.from_store(store)
        assert statistics.predicate(TripleKind.DATA, 424242) is None
        assert statistics.predicate_rows(TripleKind.SCHEMA, 0) == 0
        store.close()


class TestIncrementalEquivalence:
    def test_ingest_rows_matches_one_pass(self, backend, bibliography_small):
        """Profile built row-by-row == profile built by scanning the store."""
        store = backend()
        rows = store.insert_triples(list(bibliography_small))
        incremental = CardinalityStatistics()
        incremental.ingest_rows(rows)
        assert incremental == CardinalityStatistics.from_store(store)
        store.close()

    def test_ingest_is_order_independent(self, bsbm_small):
        import random

        store = MemoryStore()
        rows = store.insert_triples(list(bsbm_small))
        shuffled = list(rows)
        random.Random(3).shuffle(shuffled)
        forward, backward = CardinalityStatistics(), CardinalityStatistics()
        forward.ingest_rows(rows)
        backward.ingest_rows(shuffled)
        assert forward == backward
        store.close()

    def test_as_dict_is_json_friendly(self, backend):
        import json

        store = backend()
        store.load_triples(_small_triples())
        statistics = CardinalityStatistics.from_store(store)
        rendered = json.dumps(statistics.as_dict())
        assert "class_rows" in rendered
        store.close()


class TestCatalogRefresh:
    def test_add_triples_refreshes_statistics_in_place(self):
        """The catalog must fold incremental ingest into the live profile —
        no stale estimates, no re-scan (satellite bugfix)."""
        from repro.model.graph import RDFGraph
        from repro.service.catalog import GraphCatalog

        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(_small_triples()))
            before = entry.statistics_index()
            p = entry.store.dictionary.encode_existing(EX.p)
            assert before.predicate_rows(TripleKind.DATA, p) == 3

            entry.add_triples([Triple(EX.c, EX.p, EX.a), Triple(EX.d, RDF_TYPE, EX.C2)])
            after = entry.statistics_index()
            # same object, updated in place and re-tagged with the version
            assert after is before
            assert after.predicate_rows(TripleKind.DATA, p) == 4
            assert after.distinct_subjects(TripleKind.DATA, p) == 3
            c2 = entry.store.dictionary.encode_existing(EX.C2)
            assert after.class_count(c2) == 2
            # and it agrees exactly with a fresh scan of the mutated store
            assert after == CardinalityStatistics.from_store(entry.store)

    def test_duplicate_adds_do_not_inflate_counts(self):
        from repro.model.graph import RDFGraph
        from repro.service.catalog import GraphCatalog

        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(_small_triples()))
            before = entry.statistics_index()
            p = entry.store.dictionary.encode_existing(EX.p)
            entry.add_triples([Triple(EX.a, EX.p, EX.b)])  # already present
            assert entry.statistics_index().predicate_rows(TripleKind.DATA, p) == 3
            assert entry.statistics_index() is before

    def test_planner_rebuilt_after_ingest(self):
        from repro.model.graph import RDFGraph
        from repro.service.catalog import GraphCatalog

        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(_small_triples()))
            first = entry.planner()
            assert entry.planner() is first  # cached while the version holds
            entry.add_triples([Triple(EX.c, EX.q, EX.a)])
            assert entry.planner() is not first  # stale plan cache dropped
