"""Tests for the summary-guarded query service, including pruning soundness."""

import pytest

from repro.datasets.random_graph import RandomGraphConfig, generate_random_graph
from repro.queries.evaluation import evaluate
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.service.workload import generate_mixed_workload

ALL_KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")


class TestAnswerPipeline:
    def test_answers_match_term_evaluation(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog)
            for query in generate_rbgp_workload(bibliography_small, count=8, seed=2):
                answer = service.answer("bib", query)
                assert answer.answers == evaluate(bibliography_small, query)
                assert not answer.pruned

    def test_unsatisfiable_query_is_pruned(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog)
            query = parse_query(
                "PREFIX b: <http://bib.example.org/> ASK { ?x b:cites ?y }"
            )
            answer = service.answer("bib", query)
            assert answer.empty
            # absent property: rejected at compilation or by the guard
            assert answer.pruned or answer.evaluation_seconds >= 0.0

    def test_non_rbgp_query_skips_guard_but_answers(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            service = QueryService(catalog)
            query = parse_query(
                "PREFIX f: <http://example.org/fig2/> "
                "SELECT ?a WHERE { <http://example.org/fig2/r1> f:author ?a }"
            )
            answer = service.answer("fig2", query)
            assert not answer.prunable
            assert answer.answers == evaluate(fig2, query)

    def test_prune_disabled_still_correct(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog, prune=False)
            query = parse_query(
                "PREFIX b: <http://bib.example.org/> ASK { ?x b:cites ?y }"
            )
            answer = service.answer("bib", query)
            assert answer.empty and not answer.pruned

    def test_limit_caps_answers(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog)
            query = parse_query(
                "PREFIX b: <http://bib.example.org/> SELECT ?x WHERE { ?x b:writtenBy ?y }"
            )
            answer = service.answer("bib", query, limit=2)
            assert len(answer.answers) == 2

    def test_statistics_accumulate(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog)
            satisfiable = parse_query(
                "PREFIX b: <http://bib.example.org/> ASK { ?x b:writtenBy ?y }"
            )
            unsatisfiable = parse_query(
                "PREFIX b: <http://bib.example.org/> ASK { ?x b:cites ?y }"
            )
            service.answer("bib", satisfiable)
            service.answer("bib", unsatisfiable)
            stats = service.statistics.as_dict()
            assert stats["queries"] == 2
            assert stats["pruned"] == 1
            assert stats["evaluated"] == 1

    def test_cascade_kind_spec(self, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog, kind="weak+strong")
            assert service.kinds == ("weak", "strong")
            query = parse_query(
                "PREFIX b: <http://bib.example.org/> ASK { ?x b:cites ?y }"
            )
            assert service.answer("bib", query).empty

    def test_saturated_answers_are_certain_answers(self, book_graph):
        from repro.queries.evaluation import evaluate_saturated

        with GraphCatalog() as catalog:
            catalog.register("book", graph=book_graph)
            service = QueryService(catalog)
            for query in generate_rbgp_workload(book_graph, count=5, seed=4):
                answer = service.answer("book", query, saturated=True)
                assert answer.answers == evaluate_saturated(book_graph, query)


class TestPruningSoundnessProperty:
    """The service never declares a satisfiable query empty.

    Random graphs × all five summary kinds × mixed workloads with
    generation-time ground truth: every verdict must match, and pruning may
    only ever fire on genuinely empty queries.
    """

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sound_on_random_graphs(self, kind):
        for seed in (11, 23, 47):
            graph = generate_random_graph(RandomGraphConfig(), seed=seed)
            graph.name = f"random_{seed}"
            workload = generate_mixed_workload(
                graph, count=20, unsatisfiable_fraction=0.5, seed=seed
            )
            assert workload, "workload generation produced no queries"
            with GraphCatalog() as catalog:
                catalog.register(graph.name, graph=graph)
                service = QueryService(catalog, kind=kind)
                for item in workload:
                    answer = service.answer(graph.name, item.query)
                    if item.satisfiable:
                        assert not answer.empty, (
                            f"{kind} guard declared satisfiable query empty: {item.query}"
                        )
                        assert answer.answers == evaluate(graph, item.query)
                    else:
                        assert answer.empty

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sound_on_generated_satisfiable_workloads(self, kind, random_graph):
        random_graph.name = "rg"
        with GraphCatalog() as catalog:
            catalog.register("rg", graph=random_graph)
            service = QueryService(catalog, kind=kind)
            for query in generate_rbgp_workload(random_graph, count=10, size=2, seed=13):
                answer = service.answer("rg", query)
                assert not answer.empty
