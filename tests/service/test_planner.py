"""Tests for the statistics-driven query planner (`repro.service.planner`)."""

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple, TripleKind
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.service.evaluator import compile_query
from repro.service.planner import QueryPlanner, plan_shape
from repro.service.statistics import CardinalityStatistics
from repro.store.memory import MemoryStore


def _skewed_store():
    """`p` is broad (9 rows), `q` is rare (1 row), class C2 is tiny."""
    triples = []
    for index in range(9):
        triples.append(Triple(EX.term(f"s{index}"), EX.p, EX.term(f"o{index}")))
        triples.append(Triple(EX.term(f"s{index}"), RDF_TYPE, EX.C1))
    triples.append(Triple(EX.term("s0"), EX.q, EX.term("o0")))
    triples.append(Triple(EX.term("s0"), RDF_TYPE, EX.C2))
    store = MemoryStore()
    store.load_graph(RDFGraph(triples))
    return store


@pytest.fixture
def planner_and_store():
    store = _skewed_store()
    return QueryPlanner(CardinalityStatistics.from_store(store)), store


class TestEstimates:
    def test_unbound_pattern_estimates_predicate_rows(self, planner_and_store):
        planner, store = planner_and_store
        x, y = Variable("x"), Variable("y")
        compiled = compile_query(
            BGPQuery([TriplePattern(x, EX.p, y)], head=(x,)), store.dictionary
        )
        assert planner.estimate_pattern(compiled.patterns[0], set()) == pytest.approx(9.0)

    def test_bound_subject_divides_by_distinct_subjects(self, planner_and_store):
        planner, store = planner_and_store
        x, y = Variable("x"), Variable("y")
        compiled = compile_query(
            BGPQuery([TriplePattern(x, EX.p, y)], head=(x,)), store.dictionary
        )
        # 9 rows / 9 distinct subjects = 1 expected row per bound subject
        bound = {0}  # x occupies slot 0
        assert planner.estimate_pattern(compiled.patterns[0], bound) == pytest.approx(1.0)

    def test_type_pattern_uses_class_membership(self, planner_and_store):
        planner, store = planner_and_store
        x = Variable("x")
        rare = compile_query(
            BGPQuery([TriplePattern(x, RDF_TYPE, EX.C2)], head=(x,)), store.dictionary
        )
        common = compile_query(
            BGPQuery([TriplePattern(x, RDF_TYPE, EX.C1)], head=(x,)), store.dictionary
        )
        assert planner.estimate_pattern(rare.patterns[0], set()) == pytest.approx(1.0)
        assert planner.estimate_pattern(common.patterns[0], set()) == pytest.approx(9.0)

    def test_absent_predicate_estimates_zero(self, planner_and_store):
        planner, store = planner_and_store
        store.dictionary.encode(EX.never_used)  # known term, no rows
        x, y = Variable("x"), Variable("y")
        compiled = compile_query(
            BGPQuery([TriplePattern(x, EX.never_used, y)], head=(x,)), store.dictionary
        )
        assert planner.estimate_pattern(compiled.patterns[0], set()) == 0.0

    def test_variable_predicate_sums_all_tables(self, planner_and_store):
        planner, store = planner_and_store
        x, p, y = Variable("x"), Variable("p"), Variable("y")
        compiled = compile_query(
            BGPQuery([TriplePattern(x, p, y)], head=(p,)), store.dictionary
        )
        total = planner.statistics.total_rows
        assert planner.estimate_pattern(compiled.patterns[0], set()) == pytest.approx(total)


class TestOrdering:
    def test_selective_pattern_goes_first(self, planner_and_store):
        """The rare class drives the join, whatever the syntactic order —
        the statistic the greedy bound-count order cannot see."""
        planner, store = planner_and_store
        x, y = Variable("x"), Variable("y")
        query = BGPQuery(
            [
                TriplePattern(x, EX.p, y),  # 9 rows
                TriplePattern(x, RDF_TYPE, EX.C2),  # 1 row
            ],
            head=(x,),
        )
        compiled = compile_query(query, store.dictionary)
        plan = planner.plan(compiled)
        assert plan.order == [1, 0]
        assert plan.stages[0].estimate == pytest.approx(1.0)

    def test_plan_is_deterministic_on_ties(self, planner_and_store):
        planner, store = planner_and_store
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, EX.p, y), TriplePattern(x, EX.p, z)], head=(x,)
        )
        compiled = compile_query(query, store.dictionary)
        assert planner.plan(compiled).order == planner.plan(compiled).order


class TestPlanCache:
    def test_repeated_shape_hits_the_cache(self, planner_and_store):
        planner, store = planner_and_store
        x, y = Variable("x"), Variable("y")
        query = BGPQuery([TriplePattern(x, EX.p, y)], head=(x,))
        first = planner.plan(compile_query(query, store.dictionary))
        assert planner.cache_misses == 1 and planner.cache_hits == 0
        second = planner.plan(compile_query(query, store.dictionary))
        assert second is first
        assert planner.cache_hits == 1
        assert planner.last_was_hit

    def test_different_constants_are_different_shapes(self, planner_and_store):
        planner, store = planner_and_store
        x, y = Variable("x"), Variable("y")
        planner.plan(compile_query(BGPQuery([TriplePattern(x, EX.p, y)], head=(x,)), store.dictionary))
        planner.plan(compile_query(BGPQuery([TriplePattern(x, EX.q, y)], head=(x,)), store.dictionary))
        assert planner.cache_misses == 2

    def test_limit_bounded_evaluation_plans_exactly_once(self, planner_and_store):
        """The limit path must not double-count planner cache traffic
        (regression: _prefer_pipelined planned the shape a second time)."""
        from repro.service.evaluator import EncodedEvaluator

        planner, store = planner_and_store
        evaluator = EncodedEvaluator(store, strategy="hash", planner=planner)
        x, y = Variable("x"), Variable("y")
        query = BGPQuery([TriplePattern(x, EX.p, y)], head=(x,))
        evaluator.evaluate(query, limit=2)
        assert (planner.cache_hits, planner.cache_misses) == (0, 1)
        evaluator.evaluate(query, limit=2)
        assert (planner.cache_hits, planner.cache_misses) == (1, 1)

    def test_shape_ignores_variable_names(self, planner_and_store):
        planner, store = planner_and_store
        a, b = Variable("alpha"), Variable("beta")
        x, y = Variable("x"), Variable("y")
        one = compile_query(BGPQuery([TriplePattern(a, EX.p, b)], head=(a,)), store.dictionary)
        two = compile_query(BGPQuery([TriplePattern(x, EX.p, y)], head=(x,)), store.dictionary)
        assert plan_shape(one) == plan_shape(two)


class TestPlanCacheBound:
    """The plan cache is a bounded LRU — a long-lived server facing
    adversarially diverse query shapes must not leak one plan per shape."""

    def _shape(self, store, index):
        """A compiled query whose shape is distinct per *index* (constants
        are part of the shape key)."""
        x = Variable("x")
        constant = EX.term(f"shape-const-{index}")
        store.dictionary.encode(constant)
        return compile_query(
            BGPQuery([TriplePattern(x, EX.p, constant)], head=(x,)), store.dictionary
        )

    def test_cap_is_enforced(self, planner_and_store):
        _planner, store = planner_and_store
        planner = QueryPlanner(
            CardinalityStatistics.from_store(store), plan_cache_cap=4
        )
        for index in range(10):
            planner.plan(self._shape(store, index))
        assert planner.cached_plan_count == 4
        assert planner.cache_evictions == 6
        assert planner.cache_misses == 10

    def test_evicted_shape_replans_as_a_miss(self, planner_and_store):
        _planner, store = planner_and_store
        planner = QueryPlanner(CardinalityStatistics.from_store(store), plan_cache_cap=2)
        first = self._shape(store, 0)
        planner.plan(first)
        planner.plan(self._shape(store, 1))
        planner.plan(self._shape(store, 2))  # evicts shape 0
        assert planner.cache_evictions == 1
        planner.plan(first)
        assert planner.cache_misses == 4
        assert planner.cache_hits == 0
        assert not planner.last_was_hit

    def test_recent_use_protects_against_eviction(self, planner_and_store):
        _planner, store = planner_and_store
        planner = QueryPlanner(CardinalityStatistics.from_store(store), plan_cache_cap=2)
        first = self._shape(store, 0)
        planner.plan(first)
        planner.plan(self._shape(store, 1))
        planner.plan(first)  # touch: shape 1 is now the oldest
        planner.plan(self._shape(store, 2))  # evicts shape 1, not shape 0
        planner.plan(first)
        assert planner.cache_hits == 2  # both re-uses of shape 0 hit
        assert planner.cache_evictions == 1

    def test_hits_plus_misses_count_every_arrival(self, planner_and_store):
        _planner, store = planner_and_store
        planner = QueryPlanner(CardinalityStatistics.from_store(store), plan_cache_cap=3)
        arrivals = 0
        for round_index in range(3):
            for index in range(5):
                planner.plan(self._shape(store, index))
                arrivals += 1
        assert planner.cache_hits + planner.cache_misses == arrivals

    def test_invalid_cap_rejected(self, planner_and_store):
        _planner, store = planner_and_store
        with pytest.raises(ValueError):
            QueryPlanner(CardinalityStatistics.from_store(store), plan_cache_cap=0)

    def test_default_cap_is_exposed(self, planner_and_store):
        from repro.service.planner import DEFAULT_PLAN_CACHE_CAP

        planner, _store = planner_and_store
        assert planner.plan_cache_cap == DEFAULT_PLAN_CACHE_CAP > 0
