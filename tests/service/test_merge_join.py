"""Merge-join strategy tests: answer equality, fallback, trace algorithms.

``strategy="merge"`` must answer exactly like the hash and nested
strategies on every backend: over sorted posting runs on the memory
backend, and by silently degrading to the hash fetch wherever a run is
unavailable (the SQLite backend, variable predicates, ineligible join
shapes, or a statistics gate that prefers hashing).
"""

import random

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX
from repro.model.triple import Triple
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import evaluate
from repro.queries.generator import generate_rbgp_workload
from repro.service.evaluator import STRATEGIES, EncodedEvaluator
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


def _evaluators(graph, backend):
    store = backend()
    store.load_graph(graph)
    return (
        EncodedEvaluator(store, strategy="merge"),
        EncodedEvaluator(store, strategy="nested"),
    )


def _shuffles(query: BGPQuery, seed: int, count: int = 3):
    rng = random.Random(seed)
    yield query
    for _ in range(count):
        patterns = list(query.patterns)
        rng.shuffle(patterns)
        yield BGPQuery(patterns, head=query.head, name=query.name)


def _chain_graph():
    triples = []
    for index in range(6):
        author = EX[f"a{index % 3}"]
        paper = EX[f"r{index}"]
        venue = EX[f"v{index % 2}"]
        triples.append(Triple(paper, EX.author, author))
        triples.append(Triple(paper, EX.venue, venue))
        triples.append(Triple(author, EX.affiliation, EX[f"u{index % 2}"]))
    return RDFGraph(triples)


class TestMergeStrategyRegistered:
    def test_merge_is_a_known_strategy(self):
        assert "merge" in STRATEGIES

    def test_unknown_strategy_still_rejected(self):
        with MemoryStore() as store:
            with pytest.raises(ValueError):
                EncodedEvaluator(store, strategy="zigzag")


class TestAnswerEquality:
    def test_generated_workloads_shuffled(self, fig2, bibliography_small, backend):
        for graph, seed in ((fig2, 3), (bibliography_small, 5)):
            merged, nested = _evaluators(graph, backend)
            for query in generate_rbgp_workload(graph, count=8, size=2, seed=seed):
                expected = evaluate(graph, query)
                for variant in _shuffles(query, seed):
                    assert merged.evaluate(variant) == expected
                    assert nested.evaluate(variant) == expected

    def test_three_pattern_joins(self, bsbm_small, backend):
        merged, nested = _evaluators(bsbm_small, backend)
        for query in generate_rbgp_workload(bsbm_small, count=6, size=3, seed=11):
            expected = evaluate(bsbm_small, query)
            for variant in _shuffles(query, 11):
                assert merged.evaluate(variant) == expected
                assert nested.evaluate(variant) == expected

    def test_chain_fork_and_constant_shapes(self, backend):
        graph = _chain_graph()
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        queries = [
            # chain: join on the object of the first pattern
            BGPQuery(
                [TriplePattern(x, EX.author, y), TriplePattern(y, EX.affiliation, z)],
                head=(x, z),
            ),
            # fork: two patterns share the subject
            BGPQuery(
                [TriplePattern(x, EX.author, y), TriplePattern(x, EX.venue, z)],
                head=(y, z),
            ),
            # semi-join: the non-key column is pinned by a constant
            BGPQuery(
                [TriplePattern(x, EX.author, y), TriplePattern(x, EX.venue, EX.v0)],
                head=(x, y),
            ),
            # object-object join
            BGPQuery(
                [TriplePattern(x, EX.author, z), TriplePattern(y, EX.author, z)],
                head=(x, y),
            ),
        ]
        merged, nested = _evaluators(graph, backend)
        for query in queries:
            expected = evaluate(graph, query)
            assert merged.evaluate(query) == expected
            assert nested.evaluate(query) == expected

    def test_self_loop_pattern_not_merged_but_correct(self, backend):
        graph = RDFGraph(
            [Triple(EX.a, EX.p, EX.a), Triple(EX.a, EX.p, EX.b), Triple(EX.b, EX.q, EX.a)]
        )
        x, y = Variable("x"), Variable("y")
        query = BGPQuery(
            [TriplePattern(x, EX.q, y), TriplePattern(y, EX.p, y)], head=(x, y)
        )
        merged, nested = _evaluators(graph, backend)
        assert merged.evaluate(query) == nested.evaluate(query) == evaluate(graph, query)

    def test_limits_respected(self, backend):
        graph = _chain_graph()
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, EX.author, y), TriplePattern(y, EX.affiliation, z)],
            head=(x, z),
        )
        merged, _nested = _evaluators(graph, backend)
        full = merged.evaluate(query)
        limited = merged.evaluate(query, limit=2)
        assert len(limited) == 2
        assert limited <= full
        assert merged.has_answers(query)


class TestTraceAlgorithm:
    def _chain_query(self):
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        return BGPQuery(
            [TriplePattern(x, EX.author, y), TriplePattern(y, EX.affiliation, z)],
            head=(x, z),
        )

    def test_memory_trace_reports_merge_stage(self):
        with MemoryStore() as store:
            store.load_graph(_chain_graph())
            merged = EncodedEvaluator(store, strategy="merge")
            trace = merged.explain(self._chain_query())
            algorithms = [stage.algorithm for stage in trace.stages]
            assert "merge" in algorithms
            assert all(algorithm in ("hash", "merge") for algorithm in algorithms)
            assert all("algorithm" in stage.as_dict() for stage in trace.stages)

    def test_sqlite_falls_back_to_hash_everywhere(self):
        with SQLiteStore() as store:
            store.load_graph(_chain_graph())
            merged = EncodedEvaluator(store, strategy="merge")
            trace = merged.explain(self._chain_query())
            assert [stage.algorithm for stage in trace.stages] == ["hash", "hash"]

    def test_nested_stages_carry_no_algorithm(self):
        with MemoryStore() as store:
            store.load_graph(_chain_graph())
            nested = EncodedEvaluator(store, strategy="nested")
            trace = nested.explain(self._chain_query())
            assert all(stage.algorithm is None for stage in trace.stages)

    def test_statistics_gate_prefers_hash_for_tiny_runs(self):
        # EX.solo has one row while the binding table carries 30 rows:
        # fetching the one-row relation and hashing beats 30 dict probes,
        # and the gate must report the stage as a hash stage
        triples = [Triple(EX[f"s{i}"], EX.wide, EX.hub) for i in range(30)]
        triples.append(Triple(EX.hub, EX.solo, EX.target))
        with MemoryStore() as store:
            store.load_graph(RDFGraph(triples))
            merged = EncodedEvaluator(store, strategy="merge")
            x, y, z = Variable("x"), Variable("y"), Variable("z")
            query = BGPQuery(
                [TriplePattern(x, EX.wide, y), TriplePattern(y, EX.solo, z)],
                head=(x, z),
            )
            trace = merged.explain(query)
            by_description = {
                stage.description: stage.algorithm for stage in trace.stages
            }
            solo_stage = [
                algorithm
                for description, algorithm in by_description.items()
                if "solo" in description
            ]
            assert solo_stage == ["hash"]
            assert len(merged.evaluate(query)) == 30
