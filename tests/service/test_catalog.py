"""Tests for the graph catalog: registration, caching, incremental updates."""

import pytest

from repro.core.builders import summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.errors import (
    CatalogError,
    DuplicateGraphError,
    UnknownGraphError,
    UnknownSummaryKindError,
)
from repro.model.graph import RDFGraph
from repro.service.catalog import GraphCatalog
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore

ALL_KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")


class TestRegistration:
    def test_register_graph_and_lookup(self, fig2):
        with GraphCatalog() as catalog:
            entry = catalog.register("fig2", graph=fig2)
            assert catalog.entry("fig2") is entry
            assert "fig2" in catalog
            assert catalog.names() == ["fig2"]

    def test_register_preloaded_store(self, fig2):
        store = SQLiteStore()
        store.load_graph(fig2)
        with GraphCatalog() as catalog:
            entry = catalog.register("fig2", store=store)
            assert entry.store is store
            assert len(entry.to_graph()) == len(fig2)

    def test_duplicate_name_rejected(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("g", graph=fig2)
            with pytest.raises(DuplicateGraphError):
                catalog.register("g", graph=fig2)

    def test_duplicate_register_is_a_catalog_error_with_a_clear_message(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("g", graph=fig2)
            with pytest.raises(CatalogError, match="'g' is already registered"):
                catalog.register("g", graph=RDFGraph())

    def test_duplicate_register_leaves_existing_entry_untouched(self, fig2):
        with GraphCatalog() as catalog:
            original = catalog.register("g", graph=fig2)
            with pytest.raises(DuplicateGraphError):
                catalog.register("g", graph=RDFGraph())
            # the existing entry is the same live object with its data and
            # caches intact — nothing was replaced, closed or invalidated
            assert catalog.entry("g") is original
            assert len(original.to_graph()) == len(fig2)
            assert len(original.summary("weak").graph) > 0

    def test_drop_then_reregister_round_trip(self, fig2, bibliography_small):
        with GraphCatalog() as catalog:
            catalog.register("g", graph=fig2)
            catalog.drop("g")
            assert "g" not in catalog
            entry = catalog.register("g", graph=bibliography_small)
            assert catalog.entry("g") is entry
            assert len(entry.to_graph()) == len(bibliography_small)
            assert entry.version == 0

    def test_catalog_error_hierarchy(self):
        assert issubclass(DuplicateGraphError, CatalogError)
        assert issubclass(UnknownGraphError, CatalogError)

    def test_unknown_name_rejected(self):
        with GraphCatalog() as catalog:
            with pytest.raises(UnknownGraphError):
                catalog.entry("missing")

    def test_register_needs_exactly_one_source(self, fig2):
        store = MemoryStore()
        with GraphCatalog() as catalog:
            with pytest.raises(ValueError):
                catalog.register("g")
            with pytest.raises(ValueError):
                catalog.register("g", graph=fig2, store=store)

    def test_drop_closes_and_forgets(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("g", graph=fig2)
            catalog.drop("g")
            assert "g" not in catalog


class TestSummaryCaching:
    def test_every_kind_matches_direct_summarization(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            for kind in ALL_KINDS:
                cached = catalog.summary("fig2", kind)
                direct = summarize(fig2, kind)
                assert graphs_isomorphic(cached.graph, direct.graph), kind

    def test_summary_is_cached_until_update(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            first = catalog.summary("fig2", "strong")
            assert catalog.summary("fig2", "strong") is first

    def test_kind_aliases_accepted(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            assert catalog.summary("fig2", "tw").kind == "typed_weak"

    def test_unknown_kind_rejected(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            with pytest.raises(UnknownSummaryKindError):
                catalog.summary("fig2", "nope")


class TestIncrementalUpdates:
    def test_add_triples_keeps_weak_summary_exact(self, bibliography_small):
        triples = sorted(bibliography_small)
        half = len(triples) // 2
        with GraphCatalog() as catalog:
            entry = catalog.register("bib", graph=RDFGraph(triples[:half]))
            entry.add_triples(triples[half:])
            expected = summarize(RDFGraph(triples), "weak")
            assert graphs_isomorphic(entry.summary("weak").graph, expected.graph)

    def test_one_by_one_additions_match_batch(self, fig2):
        triples = sorted(fig2)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:1]))
            for triple in triples[1:]:
                entry.add_triples([triple])
            expected = summarize(fig2, "weak")
            assert graphs_isomorphic(entry.summary("weak").graph, expected.graph)

    def test_update_invalidates_other_kinds(self, fig2):
        triples = sorted(fig2)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-2]))
            stale = entry.summary("strong")
            entry.add_triples(triples[-2:])
            fresh = entry.summary("strong")
            assert fresh is not stale
            expected = summarize(fig2, "strong")
            assert graphs_isomorphic(fresh.graph, expected.graph)

    def test_version_bumps_on_update(self, fig2):
        triples = sorted(fig2)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-1]))
            before = entry.version
            entry.add_triples(triples[-1:])
            assert entry.version == before + 1

    @pytest.mark.parametrize("backend", [MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
    def test_duplicate_adds_are_noops(self, fig2, backend):
        triples = sorted(fig2)
        store = backend()
        store.load_graph(fig2)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", store=store)
            rows_before = entry.store.statistics().total_rows
            version_before = entry.version
            assert entry.add_triples(triples[:3]) == 0
            assert entry.store.statistics().total_rows == rows_before
            assert entry.version == version_before

    def test_held_saturated_evaluator_survives_update(self, book_graph):
        from repro.queries.generator import generate_rbgp_workload
        from repro.schema.saturation import saturate

        triples = sorted(book_graph)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-1], name="g"))
            held = entry.saturated_evaluator()
            query = generate_rbgp_workload(RDFGraph(triples[:-1]), count=1, seed=1)[0]
            before = held.evaluate(query)
            entry.add_triples(triples[-1:])
            fresh = entry.saturated_evaluator()
            # the saturated store is maintained *in place* now: the held
            # evaluator keeps working, is the same object a new request
            # gets, and serves the post-update G∞
            assert fresh is held
            from repro.queries.evaluation import evaluate

            after = held.evaluate(query)
            assert after == evaluate(saturate(entry.to_graph()), query)
            assert before <= after  # saturation only ever adds triples

    def test_saturated_store_maintained_without_rebuild(self, book_graph):
        from repro.schema.saturation import saturate

        triples = sorted(book_graph)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-6], name="g"))
            entry.saturated_evaluator()
            assert entry.build_counters["saturation_builds"] == 1
            for index in range(6, 0, -2):
                stop = None if index == 2 else -(index - 2)
                entry.add_triples(triples[-index:stop])
            # every delta applied in place: still exactly one full build,
            # and the maintained store equals a from-scratch saturation
            assert entry.build_counters["saturation_builds"] == 1
            maintained = set(entry.saturated_evaluator().store.to_graph())
            assert maintained == set(saturate(entry.to_graph()))

    def test_saturated_statistics_updated_in_place(self, book_graph):
        from repro.service.statistics import CardinalityStatistics

        triples = sorted(book_graph)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-3], name="g"))
            evaluator = entry.saturated_evaluator("hash")
            evaluator.statistics()  # force the saturated profile into being
            scans_before = entry.build_counters["saturated_statistics_scans"]
            entry.add_triples(triples[-3:])
            profile = entry.saturated_evaluator("hash").statistics()
            assert entry.build_counters["saturated_statistics_scans"] == scans_before
            assert profile == CardinalityStatistics.from_store(evaluator.store)

    def test_saturation_metrics_track_deltas(self, book_graph):
        triples = sorted(book_graph)
        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=RDFGraph(triples[:-2], name="g"))
            assert entry.saturation_metrics() is None  # G∞ never requested
            entry.add_triples(triples[-2:-1])  # still no saturated state: no cost
            assert entry.saturation_metrics() is None
            entry.saturated_evaluator()
            metrics = entry.saturation_metrics()
            assert metrics["live"] and metrics["builds"] == 1 and metrics["deltas"] == 0
            entry.add_triples(triples[-1:])
            metrics = entry.saturation_metrics()
            assert metrics["deltas"] == 1
            assert metrics["last_delta_rows"] == 1
            assert metrics["store_rows"] >= metrics["derived_rows"]

    def test_shuffled_insertion_orders_converge(self, fig2):
        import random

        triples = sorted(fig2)
        expected = summarize(fig2, "weak")
        for seed in (1, 2, 3):
            shuffled = list(triples)
            random.Random(seed).shuffle(shuffled)
            with GraphCatalog() as catalog:
                entry = catalog.register("g", graph=RDFGraph(shuffled[:1]))
                for triple in shuffled[1:]:
                    entry.add_triples([triple])
                assert graphs_isomorphic(entry.summary("weak").graph, expected.graph)
