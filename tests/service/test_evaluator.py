"""Tests for the encoded BGP evaluator (service layer)."""

import pytest

from repro.model.namespaces import EX, RDFS_SUBCLASSOF, RDF_TYPE
from repro.model.terms import Literal, URI
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import evaluate
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.service.evaluator import EncodedEvaluator, compile_query
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


def _evaluator_for(graph, backend):
    store = backend()
    store.load_graph(graph)
    return EncodedEvaluator(store)


class TestCompilation:
    def test_constants_encode_to_store_ids(self, fig2, backend):
        evaluator = _evaluator_for(fig2, backend)
        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> SELECT ?x WHERE { ?x f:author ?a }"
        )
        compiled = evaluator.compile(query)
        assert not compiled.trivially_empty
        assert compiled.patterns[0].predicate >= 0

    def test_unknown_constant_is_trivially_empty(self, fig2, backend):
        evaluator = _evaluator_for(fig2, backend)
        query = parse_query("SELECT ?x WHERE { ?x <http://nowhere/p> ?y }")
        compiled = evaluator.compile(query)
        assert compiled.trivially_empty
        assert compiled.unsatisfiable_term == URI("http://nowhere/p")
        assert evaluator.evaluate(compiled) == set()
        assert not evaluator.has_answers(query)

    def test_variable_slots_are_shared_across_patterns(self, fig2):
        evaluator = _evaluator_for(fig2, MemoryStore)
        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> "
            "SELECT ?x WHERE { ?x f:author ?a . ?x a f:Book }"
        )
        compiled = evaluator.compile(query)
        assert compiled.patterns[0].subject == compiled.patterns[1].subject


class TestEquivalenceWithTermEvaluator:
    def test_generated_workloads(self, fig2, bibliography_small, backend):
        for graph, seed in ((fig2, 3), (bibliography_small, 5)):
            evaluator = _evaluator_for(graph, backend)
            for query in generate_rbgp_workload(graph, count=10, size=2, seed=seed):
                assert evaluator.evaluate(query) == evaluate(graph, query)

    def test_constant_object_query(self, fig2, backend):
        evaluator = _evaluator_for(fig2, backend)
        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> "
            "SELECT ?x WHERE { ?x f:author ?a . ?x a f:Book }"
        )
        assert evaluator.evaluate(query) == evaluate(fig2, query)

    def test_literal_constant(self, book_graph, backend):
        literal = sorted(book_graph.literals())[0]
        variable = Variable("x")
        pattern = next(iter(book_graph.triples(obj=literal)))
        query = BGPQuery([TriplePattern(variable, pattern.predicate, literal)], head=(variable,))
        evaluator = _evaluator_for(book_graph, backend)
        assert evaluator.evaluate(query) == evaluate(book_graph, query)

    def test_variable_predicate_spans_all_tables(self, book_graph, backend):
        variable_x, variable_p, variable_y = Variable("x"), Variable("p"), Variable("y")
        query = BGPQuery(
            [TriplePattern(variable_x, variable_p, variable_y)],
            head=(variable_p,),
        )
        evaluator = _evaluator_for(book_graph, backend)
        assert evaluator.evaluate(query) == evaluate(book_graph, query)

    def test_schema_pattern(self, book_graph, backend):
        variable_c, variable_d = Variable("c"), Variable("d")
        query = BGPQuery(
            [TriplePattern(variable_c, RDFS_SUBCLASSOF, variable_d)],
            head=(variable_c, variable_d),
        )
        evaluator = _evaluator_for(book_graph, backend)
        assert evaluator.evaluate(query) == evaluate(book_graph, query)

    def test_repeated_variable_in_one_pattern(self, backend):
        from repro.model.graph import RDFGraph
        from repro.model.triple import Triple

        graph = RDFGraph(
            [
                Triple(EX.a, EX.p, EX.a),
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.p, EX.a),
            ]
        )
        variable = Variable("x")
        query = BGPQuery([TriplePattern(variable, EX.p, variable)], head=(variable,))
        evaluator = _evaluator_for(graph, backend)
        assert evaluator.evaluate(query) == evaluate(graph, query) == {(EX.a,)}


class TestSQLPushdownStrategy:
    """strategy='sql': the whole join runs inside SQLite; answers must be
    identical to the Python executors (with a hash fallback elsewhere)."""

    def _sql_evaluator(self, graph):
        store = SQLiteStore()
        store.load_graph(graph)
        return EncodedEvaluator(store, strategy="sql")

    def test_generated_workloads_match_term_evaluation(self, fig2, bibliography_small):
        for graph, seed in ((fig2, 3), (bibliography_small, 5)):
            evaluator = self._sql_evaluator(graph)
            for query in generate_rbgp_workload(graph, count=10, size=2, seed=seed):
                assert evaluator.evaluate(query) == evaluate(graph, query), query

    def test_boolean_semantics(self, fig2):
        evaluator = self._sql_evaluator(fig2)
        yes = parse_query("ASK { ?x <http://example.org/fig2/editor> ?y }")
        no = parse_query(
            "ASK { ?y <http://example.org/fig2/comment> ?x . "
            "?x <http://example.org/fig2/editor> ?z }"
        )
        assert evaluator.evaluate(yes) == {()}
        assert evaluator.evaluate(no) == set()

    def test_repeated_variable_in_one_pattern(self):
        from repro.model.graph import RDFGraph
        from repro.model.triple import Triple

        graph = RDFGraph(
            [Triple(EX.a, EX.p, EX.a), Triple(EX.a, EX.p, EX.b), Triple(EX.b, EX.p, EX.b)]
        )
        evaluator = self._sql_evaluator(graph)
        x = Variable("x")
        query = BGPQuery([TriplePattern(x, EX.p, x)], head=(x,))
        assert evaluator.evaluate(query) == {(EX.a,), (EX.b,)}

    def test_limit_is_a_subset_of_the_full_answers(self, bibliography_small):
        evaluator = self._sql_evaluator(bibliography_small)
        query = generate_rbgp_workload(bibliography_small, count=1, size=1, seed=1)[0]
        full = evaluator.evaluate(query)
        if len(full) > 1:
            clipped = evaluator.evaluate(query, limit=1)
            assert len(clipped) == 1 and clipped <= full

    def test_variable_predicate_falls_back_to_hash(self, book_graph):
        evaluator = self._sql_evaluator(book_graph)
        x, p, y = Variable("x"), Variable("p"), Variable("y")
        query = BGPQuery([TriplePattern(x, p, y)], head=(x, p, y))
        assert evaluator.evaluate(query) == evaluate(book_graph, query)

    def test_memory_store_falls_back_to_hash(self, fig2):
        store = MemoryStore()
        store.load_graph(fig2)
        evaluator = EncodedEvaluator(store, strategy="sql")
        query = parse_query("SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }")
        assert evaluator.evaluate(query) == evaluate(fig2, query)

    def test_trace_records_the_statement(self, fig2):
        evaluator = self._sql_evaluator(fig2)
        query = parse_query("SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }")
        trace = evaluator.explain(query)
        assert trace.strategy == "sql"
        assert trace.stages and "SELECT DISTINCT" in trace.stages[0].description

    def test_dictionary_miss_is_instantly_empty(self, fig2):
        evaluator = self._sql_evaluator(fig2)
        query = parse_query("SELECT ?x WHERE { ?x <http://nowhere.example/p> ?y . }")
        assert evaluator.evaluate(query) == set()


class TestLimitsAndBooleans:
    def test_boolean_semantics(self, fig2, backend):
        evaluator = _evaluator_for(fig2, backend)
        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> ASK { ?x f:author ?a }"
        )
        assert evaluator.evaluate(query) == {()}
        assert evaluator.has_answers(query)

    def test_limit_truncates(self, bibliography_small, backend):
        evaluator = _evaluator_for(bibliography_small, backend)
        query = parse_query("SELECT ?x ?y WHERE { ?x <http://bib.example.org/writtenBy> ?y }")
        full = evaluator.evaluate(query)
        limited = evaluator.evaluate(query, limit=3)
        assert len(limited) == 3
        assert limited <= full

    def test_count_answers(self, fig2, backend):
        evaluator = _evaluator_for(fig2, backend)
        query = parse_query(
            "PREFIX f: <http://example.org/fig2/> SELECT ?x WHERE { ?x f:author ?a }"
        )
        assert evaluator.count_answers(query) == len(evaluate(fig2, query))
