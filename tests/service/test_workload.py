"""Tests for mixed workload generation and the guarded-vs-direct driver."""

from repro.queries.evaluation import has_answers
from repro.service.catalog import GraphCatalog
from repro.service.workload import (
    compare_guarded_vs_direct,
    generate_mixed_workload,
    run_workload,
)
from repro.service.service import QueryService


class TestMixedWorkloadGeneration:
    def test_composition_and_ground_truth(self, bibliography_small):
        workload = generate_mixed_workload(
            bibliography_small, count=20, unsatisfiable_fraction=0.5, seed=3
        )
        assert len(workload) == 20
        satisfiable = [item for item in workload if item.satisfiable]
        unsatisfiable = [item for item in workload if not item.satisfiable]
        assert len(unsatisfiable) == 10
        for item in satisfiable:
            assert has_answers(bibliography_small, item.query), item.query
        for item in unsatisfiable:
            assert not has_answers(bibliography_small, item.query), item.query

    def test_all_queries_are_rbgp(self, bibliography_small):
        for item in generate_mixed_workload(bibliography_small, count=16, seed=5):
            assert item.query.is_rbgp()

    def test_deterministic_for_fixed_seed(self, bibliography_small):
        first = generate_mixed_workload(bibliography_small, count=14, seed=9)
        second = generate_mixed_workload(bibliography_small, count=14, seed=9)
        assert [(str(a.query), a.satisfiable) for a in first] == [
            (str(b.query), b.satisfiable) for b in second
        ]

    def test_different_seeds_differ(self, bibliography_small):
        first = generate_mixed_workload(bibliography_small, count=14, seed=1)
        second = generate_mixed_workload(bibliography_small, count=14, seed=2)
        assert [str(a.query) for a in first] != [str(b.query) for b in second]

    def test_unsat_fraction_fallback_on_tiny_graph(self, fig2):
        # few structural candidates: dictionary misses fill the quota
        workload = generate_mixed_workload(fig2, count=10, unsatisfiable_fraction=0.8, seed=0)
        unsatisfiable = [item for item in workload if not item.satisfiable]
        assert len(unsatisfiable) == 8
        for item in unsatisfiable:
            assert not has_answers(fig2, item.query)


class TestDrivers:
    def test_run_workload_is_sound(self, bibliography_small):
        workload = generate_mixed_workload(bibliography_small, count=16, seed=4)
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            service = QueryService(catalog, kind="weak+strong")
            report = run_workload(service, "bib", workload)
            assert report.sound
            assert report.query_count == 16
            assert report.pruned >= 1

    def test_compare_guarded_vs_direct_agrees(self, bibliography_small):
        workload = generate_mixed_workload(bibliography_small, count=16, seed=6)
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            report = compare_guarded_vs_direct(catalog, "bib", workload, kind="weak")
            assert report.sound
            assert not report.disagreements
            assert report.guarded.query_count == 16

    def test_compare_with_answer_limit(self, bibliography_small):
        workload = generate_mixed_workload(
            bibliography_small, count=12, seed=7, answer_limit=3, max_embeddings=5000
        )
        with GraphCatalog() as catalog:
            catalog.register("bib", graph=bibliography_small)
            report = compare_guarded_vs_direct(
                catalog, "bib", workload, kind="weak+strong", answer_limit=3
            )
            assert report.sound


class TestJoinWorkloadAndStrategyComparison:
    def test_families_are_labelled_and_truthful(self, bsbm_small):
        from repro.queries.evaluation import evaluate
        from repro.service.workload import generate_join_workload

        workload = generate_join_workload(bsbm_small, per_family=2, seed=1)
        families = {item.family for item in workload}
        assert "sat_chain" in families
        assert "sat_fork" in families
        assert "dictionary_miss" in families
        for item in workload:
            if item.family.startswith("sat"):
                assert item.satisfiable
                assert len(item.query.patterns) >= 2
        # spot-check the generation-time ground truth on the sat families
        checked = 0
        for item in workload:
            if item.family in ("sat_chain", "sat_fork") and checked < 2:
                assert evaluate(bsbm_small, item.query, limit=1)
                checked += 1
            elif item.family.startswith("unsat") or item.family == "dictionary_miss":
                assert not item.satisfiable

    def test_join_sizes_respect_the_cap(self, bsbm_small):
        from repro.queries.evaluation import iter_embeddings
        from repro.service.workload import generate_join_workload

        cap = 50
        workload = generate_join_workload(bsbm_small, per_family=2, seed=1, max_join_size=cap)
        for item in workload:
            if item.family == "sat_chain":
                count = sum(1 for _ in iter_embeddings(bsbm_small, item.query))
                assert 1 <= count <= cap

    def test_run_strategy_comparison_reports_and_is_sound(self, bsbm_small):
        from repro.service.workload import run_strategy_comparison

        report = run_strategy_comparison(bsbm_small, per_family=2, seed=1, repeat=1)
        assert report["sound"] is True
        assert report["answer_differences"] == 0
        assert report["satisfiable_join"]["queries"] >= 2
        assert set(report["families"]) >= {"sat_chain", "sat_fork"}
        for row in report["families"].values():
            assert row["answer_differences"] == 0

    def test_run_strategy_comparison_times_all_three_strategies(self, bsbm_small):
        from repro.service.workload import run_strategy_comparison

        report = run_strategy_comparison(bsbm_small, per_family=2, seed=1, repeat=1)
        for bucket in [
            report["overall"],
            report["satisfiable_join"],
            *report["families"].values(),
        ]:
            assert bucket["merge_seconds"] > 0
            assert bucket["merge_vs_hash"] > 0
            assert bucket["hash_seconds"] > 0

    def test_run_strategy_comparison_sqlite_backend(self, bsbm_small):
        from repro.service.workload import run_strategy_comparison

        report = run_strategy_comparison(
            bsbm_small, per_family=1, seed=2, backend="sqlite", repeat=1
        )
        assert report["sound"] is True
        assert report["backend"] == "sqlite"
