"""Equivalence and probe-complexity tests for the vectorized hash join.

The property the whole PR hangs on: for every query, on every backend, in
every pattern order, ``strategy="hash"`` answers == ``strategy="nested"``
answers == the reference ``Term``-object evaluator's answers — while the
hash executor touches the store O(patterns) times, never once per binding.
"""

import random

import pytest

from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.triple import Triple
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import evaluate
from repro.queries.generator import generate_rbgp_workload
from repro.service.evaluator import EncodedEvaluator
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore


@pytest.fixture(params=[MemoryStore, SQLiteStore], ids=["memory", "sqlite"])
def backend(request):
    return request.param


def _evaluators(graph, backend):
    store = backend()
    store.load_graph(graph)
    return (
        EncodedEvaluator(store, strategy="hash"),
        EncodedEvaluator(store, strategy="nested"),
    )


def _shuffles(query: BGPQuery, seed: int, count: int = 3):
    """The query plus `count` pattern-order permutations of it."""
    rng = random.Random(seed)
    yield query
    for _ in range(count):
        patterns = list(query.patterns)
        rng.shuffle(patterns)
        yield BGPQuery(patterns, head=query.head, name=query.name)


class TestThreeWayEquivalence:
    def test_generated_workloads_shuffled(self, fig2, bibliography_small, backend):
        for graph, seed in ((fig2, 3), (bibliography_small, 5)):
            hashed, nested = _evaluators(graph, backend)
            for query in generate_rbgp_workload(graph, count=8, size=2, seed=seed):
                expected = evaluate(graph, query)
                for variant in _shuffles(query, seed):
                    assert hashed.evaluate(variant) == expected
                    assert nested.evaluate(variant) == expected

    def test_three_pattern_joins(self, bsbm_small, backend):
        hashed, nested = _evaluators(bsbm_small, backend)
        for query in generate_rbgp_workload(bsbm_small, count=6, size=3, seed=11):
            expected = evaluate(bsbm_small, query)
            for variant in _shuffles(query, 11):
                assert hashed.evaluate(variant) == expected
                assert nested.evaluate(variant) == expected

    def test_variable_predicate_join(self, book_graph, backend):
        x, p, y, z = Variable("x"), Variable("p"), Variable("y"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, p, y), TriplePattern(y, p, z)],
            head=(x, z),
        )
        hashed, nested = _evaluators(book_graph, backend)
        expected = evaluate(book_graph, query)
        assert hashed.evaluate(query) == expected
        assert nested.evaluate(query) == expected

    def test_repeated_variable_in_pattern(self, backend):
        graph = RDFGraph(
            [
                Triple(EX.a, EX.p, EX.a),
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.b, EX.p, EX.b),
                Triple(EX.b, EX.q, EX.a),
            ]
        )
        x, y = Variable("x"), Variable("y")
        loop = BGPQuery([TriplePattern(x, EX.p, x)], head=(x,))
        chained = BGPQuery(
            [TriplePattern(x, EX.p, x), TriplePattern(x, EX.q, y)], head=(x, y)
        )
        hashed, nested = _evaluators(graph, backend)
        for query in (loop, chained):
            expected = evaluate(graph, query)
            assert hashed.evaluate(query) == expected
            assert nested.evaluate(query) == expected

    def test_cartesian_product_patterns(self, backend):
        graph = RDFGraph(
            [Triple(EX.a, EX.p, EX.b), Triple(EX.c, EX.q, EX.d), Triple(EX.e, EX.q, EX.f)]
        )
        x, y, w, z = Variable("x"), Variable("y"), Variable("w"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, EX.p, y), TriplePattern(w, EX.q, z)], head=(x, w)
        )
        hashed, nested = _evaluators(graph, backend)
        assert hashed.evaluate(query) == nested.evaluate(query) == evaluate(graph, query)

    def test_boolean_and_limit_semantics(self, bibliography_small, backend):
        hashed, nested = _evaluators(bibliography_small, backend)
        for query in generate_rbgp_workload(bibliography_small, count=4, size=2, seed=9):
            ask = BGPQuery(query.patterns, head=(), name="ask")
            assert hashed.evaluate(ask) == nested.evaluate(ask)
            assert hashed.has_answers(query) == nested.has_answers(query)
            full = hashed.evaluate(query)
            limited = hashed.evaluate(query, limit=2)
            assert limited <= full
            assert len(limited) == min(2, len(full))

    def test_fully_ground_queries(self, backend):
        """Zero-variable (ground) queries must answer, not crash (regression:
        `max()` over an empty slot-position list)."""
        graph = RDFGraph([Triple(EX.a, EX.p, EX.b), Triple(EX.b, EX.q, EX.c)])
        hashed, nested = _evaluators(graph, backend)
        present = BGPQuery([TriplePattern(EX.a, EX.p, EX.b)])
        ground_join = BGPQuery(
            [TriplePattern(EX.a, EX.p, EX.b), TriplePattern(EX.b, EX.q, EX.c)]
        )
        absent = BGPQuery([TriplePattern(EX.a, EX.q, EX.b)])
        for query, expected in ((present, {()}), (ground_join, {()}), (absent, set())):
            assert hashed.evaluate(query) == expected
            assert nested.evaluate(query) == expected
            assert hashed.evaluate(query, limit=1) == expected
            assert hashed.has_answers(query) == bool(expected)

    def test_unsatisfiable_joins_are_empty(self, backend):
        graph = RDFGraph(
            [Triple(EX.a, EX.p, EX.b), Triple(EX.c, EX.q, EX.d)]
        )
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)], head=(x,)
        )
        hashed, nested = _evaluators(graph, backend)
        assert hashed.evaluate(query) == set()
        assert nested.evaluate(query) == set()


class _ProbeCountingStore(MemoryStore):
    """A memory store that counts every select/select_many call."""

    def __init__(self):
        super().__init__()
        self.select_calls = 0
        self.select_many_calls = 0

    def select(self, kind, subject=None, predicate=None, obj=None):
        self.select_calls += 1
        return super().select(kind, subject, predicate, obj)

    def select_many(self, kind, subjects=None, predicate=None, objects=None):
        self.select_many_calls += 1
        return super().select_many(kind, subjects, predicate, objects)

    @property
    def probes(self):
        return self.select_calls + self.select_many_calls

    def reset(self):
        self.select_calls = 0
        self.select_many_calls = 0


class TestProbeComplexity:
    def _chain_fixture(self, fan_out: int = 40):
        """A two-hop chain with `fan_out` bindings at the first level."""
        triples = []
        for index in range(fan_out):
            mid = EX.term(f"m{index}")
            triples.append(Triple(EX.term(f"s{index}"), EX.p, mid))
            triples.append(Triple(mid, EX.q, EX.term(f"t{index}")))
        store = _ProbeCountingStore()
        store.load_graph(RDFGraph(triples))
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        query = BGPQuery(
            [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)], head=(x, z)
        )
        return store, query

    def test_hash_join_issues_o_patterns_probes(self):
        store, query = self._chain_fixture()
        evaluator = EncodedEvaluator(store, strategy="hash")
        evaluator.statistics()  # profile build scans, it does not probe
        store.reset()
        answers = evaluator.evaluate(query)
        assert len(answers) == 40
        # one batched lookup per (pattern, routed table): 2 data patterns
        assert store.probes == len(query.patterns)

    def test_nested_probes_scale_with_bindings(self):
        store, query = self._chain_fixture()
        evaluator = EncodedEvaluator(store, strategy="nested")
        store.reset()
        evaluator.evaluate(query)
        # one driver select plus one probe per intermediate binding
        assert store.probes > 40

    def test_hash_probe_count_immune_to_join_width(self):
        """Three patterns, three probes — per-binding probing is gone."""
        triples = []
        for index in range(25):
            a, b, c = EX.term(f"a{index}"), EX.term(f"b{index}"), EX.term(f"c{index}")
            triples.append(Triple(a, EX.p, b))
            triples.append(Triple(b, EX.q, c))
            triples.append(Triple(c, EX.r, a))
        store = _ProbeCountingStore()
        store.load_graph(RDFGraph(triples))
        w, x, y, z = Variable("w"), Variable("x"), Variable("y"), Variable("z")
        query = BGPQuery(
            [
                TriplePattern(w, EX.p, x),
                TriplePattern(x, EX.q, y),
                TriplePattern(y, EX.r, z),
            ],
            head=(w, z),
        )
        evaluator = EncodedEvaluator(store, strategy="hash")
        evaluator.statistics()
        store.reset()
        assert len(evaluator.evaluate(query)) == 25
        assert store.probes == 3

    def test_trace_reports_probes_and_cardinalities(self):
        store, query = self._chain_fixture()
        evaluator = EncodedEvaluator(store, strategy="hash")
        trace = evaluator.explain(query)
        assert trace.strategy == "hash"
        assert trace.plan_cached is False
        assert trace.total_probes == 2
        assert [stage.produced for stage in trace.stages] == [40, 40]
        assert all(stage.estimate is not None for stage in trace.stages)
        again = evaluator.explain(query)
        assert again.plan_cached is True


class TestServiceIntegration:
    def test_service_strategies_agree(self, bsbm_small):
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        with GraphCatalog() as catalog:
            catalog.register("g", graph=bsbm_small)
            hashed = QueryService(catalog, kind="weak", strategy="hash")
            nested = QueryService(catalog, kind="weak", strategy="nested")
            for query in generate_rbgp_workload(bsbm_small, count=8, size=2, seed=2):
                a = hashed.answer("g", query)
                b = nested.answer("g", query)
                assert a.answers == b.answers
                assert a.strategy == "hash" and b.strategy == "nested"

    def test_guard_order_and_attribution_exposed(self, bsbm_small):
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=bsbm_small)
            service = QueryService(catalog, kind="strong+weak")
            x, y = Variable("x"), Variable("y")
            absent = BGPQuery(
                [TriplePattern(x, EX.term("not-in-bsbm"), y)], head=(x,)
            )
            answer = service.answer("g", absent)
            assert answer.pruned
            assert answer.pruned_by == answer.guard_order[0]
            # cheapest (smallest) summary first, whatever the declared order
            sizes = [
                len(entry.pruning_graph(kind)) for kind in answer.guard_order
            ]
            assert sizes == sorted(sizes)
            assert service.statistics.pruned_by_kind[answer.pruned_by] >= 1

    def test_saturated_path_honours_the_strategy(self, book_graph):
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        with GraphCatalog() as catalog:
            entry = catalog.register("b", graph=book_graph)
            nested_ev = entry.saturated_evaluator("nested")
            assert nested_ev.strategy == "nested"
            assert entry.saturated_evaluator("nested") is nested_ev
            assert entry.saturated_evaluator("hash").strategy == "hash"
            x = Variable("x")
            from repro.model.namespaces import RDF_TYPE
            from repro.model.terms import URI

            query = BGPQuery(
                [TriplePattern(x, RDF_TYPE, URI("http://example.org/Publication"))],
                head=(x,),
            )
            a = QueryService(catalog, kind="weak", strategy="nested").answer(
                "b", query, saturated=True
            )
            b = QueryService(catalog, kind="weak", strategy="hash").answer(
                "b", query, saturated=True
            )
            assert a.answers == b.answers and a.answers
            assert a.strategy == "nested" and b.strategy == "hash"

    def test_guard_ordering_never_builds_uncached_summaries(self, bsbm_small):
        """Re-ordering the cascade must keep PR 2's lazy escalation: a
        query the weak summary prunes must not force a strong-summary
        build just to sort the guards."""
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        with GraphCatalog() as catalog:
            entry = catalog.register("g", graph=bsbm_small)
            service = QueryService(catalog, kind="weak+strong")
            x, y = Variable("x"), Variable("y")
            absent = BGPQuery([TriplePattern(x, EX.term("not-in-bsbm"), y)], head=(x,))
            answer = service.answer("g", absent)
            assert answer.pruned and answer.pruned_by == "weak"
            assert answer.guard_order == ("weak", "strong")
            # the strong summary was never needed, so it was never built
            assert entry.cached_pruning_size("strong") is None
            assert entry.cached_pruning_size("weak") is not None

    def test_explain_carries_trace_through_service(self, bsbm_small):
        from repro.service.catalog import GraphCatalog
        from repro.service.service import QueryService

        with GraphCatalog() as catalog:
            catalog.register("g", graph=bsbm_small)
            service = QueryService(catalog, kind="weak")
            for query in generate_rbgp_workload(bsbm_small, count=3, size=2, seed=4):
                answer = service.answer("g", query, explain=True)
                if not answer.pruned:
                    assert answer.trace is not None
                    assert answer.trace.strategy == "hash"
                    assert len(answer.trace.stages) == len(query.patterns)
                    break
            else:
                pytest.fail("no unpruned query in the sample")
