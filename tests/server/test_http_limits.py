"""Request-size limits and graceful drain of the HTTP front end."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server.http import ServerApp, start_background
from repro.service.catalog import GraphCatalog


def _post_raw(url, data, timeout=30):
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


@pytest.fixture
def small_body_server():
    catalog = GraphCatalog()
    app = ServerApp(catalog, max_body_bytes=1024)
    server, _thread = start_background(app)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, app
    server.shutdown()
    server.server_close()
    app.close()
    catalog.close()


def test_configurable_body_limit_rejects_oversize(small_body_server):
    base, _ = small_body_server
    body = json.dumps({"name": "g", "triples": "x" * 4096}).encode()
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_raw(base + "/graphs", body)
    assert excinfo.value.code == 413
    assert "1024" in json.loads(excinfo.value.read())["error"]


def test_configurable_body_limit_accepts_undersize(small_body_server):
    base, _ = small_body_server
    status, payload = _post_raw(
        base + "/graphs", json.dumps({"name": "tiny", "triples": ""}).encode()
    )
    assert status == 201
    assert payload["name"] == "tiny"


def test_default_limit_is_64mib():
    catalog = GraphCatalog()
    app = ServerApp(catalog)
    assert app.max_body_bytes == 64 * 1024 * 1024
    app.close()
    catalog.close()


def test_nonpositive_limit_rejected():
    catalog = GraphCatalog()
    with pytest.raises(ValueError):
        ServerApp(catalog, max_body_bytes=0)
    catalog.close()


def test_drain_waits_for_inflight_requests():
    catalog = GraphCatalog()
    app = ServerApp(catalog)
    try:
        assert app.drain(timeout=0.1)  # idle: returns immediately
        app.begin_request()
        assert not app.drain(timeout=0.2)  # a request is mid-dispatch

        finished = threading.Event()

        def finish_later():
            time.sleep(0.3)
            app.end_request()
            finished.set()

        threading.Thread(target=finish_later).start()
        assert app.drain(timeout=5.0)  # wakes when the request ends
        assert finished.wait(1.0)
    finally:
        app.close()
        catalog.close()
