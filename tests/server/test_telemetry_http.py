"""The telemetry surface of the HTTP front end: /metrics, /debug/slow,
healthz version, and the per-query span tree behind ``"trace": true``."""

import json
import urllib.error
import urllib.request

import pytest

import repro
from repro import telemetry
from repro.service.catalog import GraphCatalog
from repro.server.http import ServerApp, start_background


def _call(base, method, route, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + route,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if body is not None else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
            content_type = response.headers.get("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw)
            return response.status, raw.decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def served(fig2):
    catalog = GraphCatalog()
    catalog.register("fig2", graph=fig2)
    app = ServerApp(catalog, kind="weak", max_workers=2)
    server, _thread = start_background(app)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base
    server.shutdown()
    server.server_close()
    app.close()
    catalog.close()


QUERY = {"query": "SELECT ?s WHERE { ?s ?p ?o }"}


def test_healthz_reports_version_and_uptime(served):
    status, payload = _call(served, "GET", "/healthz")
    assert status == 200
    assert payload["version"] == repro.__version__
    assert payload["uptime_seconds"] >= 0


def test_metrics_is_prometheus_text(served):
    # answer one query first so the query-plane metrics have moved
    status, answer = _call(served, "POST", "/graphs/fig2/query", QUERY)
    assert status == 200 and answer["answer_count"] > 0
    status, text = _call(served, "GET", "/metrics")
    assert status == 200
    assert isinstance(text, str)  # text/plain, not JSON
    lines = text.splitlines()
    assert any(line.startswith("# TYPE repro_") for line in lines)
    assert any(line.startswith("repro_query_count_total ") for line in lines)
    assert 'repro_query_total_seconds_bucket{le="+Inf"}' in text
    # the http request that carried the query has itself been counted
    requests = next(
        float(line.split()[-1])
        for line in lines
        if line.startswith("repro_http_requests_total ")
    )
    assert requests >= 2


def test_query_trace_key_is_opt_in(served):
    status, untraced = _call(served, "POST", "/graphs/fig2/query", QUERY)
    assert status == 200 and "query_trace" not in untraced

    status, traced = _call(
        served, "POST", "/graphs/fig2/query", dict(QUERY, trace=True)
    )
    assert status == 200
    tree = traced["query_trace"]
    assert tree["name"] == "query"
    assert len(tree["trace_id"]) == 16
    names = [child["name"] for child in tree["children"]]
    assert names == ["guard", "evaluate"]
    assert tree["attributes"]["graph"] == "fig2"


def test_debug_slow_captures_an_induced_slow_query(served):
    old = telemetry.SLOW_LOG.threshold_seconds
    telemetry.SLOW_LOG.clear()
    telemetry.SLOW_LOG.threshold_seconds = 1e-9
    try:
        status, _answer = _call(served, "POST", "/graphs/fig2/query", QUERY)
        assert status == 200
        status, payload = _call(served, "GET", "/debug/slow")
        assert status == 200
        assert payload["threshold_seconds"] == pytest.approx(1e-9)
        entry = next(e for e in payload["entries"] if e["graph"] == "fig2")
        assert entry["total_seconds"] > 0
        assert entry["sparql"].startswith("SELECT")
    finally:
        telemetry.SLOW_LOG.threshold_seconds = old
        telemetry.SLOW_LOG.clear()


def test_debug_slow_empty_by_default(served):
    telemetry.SLOW_LOG.clear()
    status, payload = _call(served, "GET", "/debug/slow")
    assert status == 200
    assert payload["entries"] == []
    assert payload["capacity"] == 256
