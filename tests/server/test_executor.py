"""Concurrency tests: races between queries and ingest must stay correct."""

import threading

import pytest

from repro.core.builders import summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.model.namespaces import EX
from repro.model.triple import Triple
from repro.queries.parser import parse_query
from repro.server.executor import QueryExecutor
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.service.statistics import CardinalityStatistics
from repro.store.sqlite import SQLiteStore


PROPERTY = "http://example.org/race/p"


def _query():
    return parse_query(f"SELECT ?x WHERE {{ ?x <{PROPERTY}> ?y . }}")


def _triple(index: int) -> Triple:
    return Triple(
        EX.term(f"race/s{index}"), EX.term("race/p"), EX.term(f"race/o{index}")
    )


@pytest.fixture(params=["memory", "sqlite"])
def catalog(request, tmp_path, fig2):
    if request.param == "memory":
        catalog = GraphCatalog()
    else:
        paths = iter(range(1000))
        catalog = GraphCatalog(
            store_factory=lambda: SQLiteStore(str(tmp_path / f"store-{next(paths)}.db"))
        )
    catalog.register("g", graph=fig2)
    yield catalog
    catalog.close()


class TestConcurrentQueries:
    def test_parallel_answers_match_serial(self, catalog):
        service = QueryService(catalog, kind="weak")
        catalog.add_triples("g", [_triple(i) for i in range(32)])
        query = _query()
        serial = service.answer("g", query).answers
        with QueryExecutor(service, max_workers=8) as executor:
            answers = executor.map_answers("g", [query] * 32)
        assert all(answer.answers == serial for answer in answers)

    def test_barrier_synchronized_readers_agree(self, catalog):
        """8 threads released simultaneously on the same entry all see the
        same complete answer set."""
        service = QueryService(catalog, kind="weak")
        catalog.add_triples("g", [_triple(i) for i in range(16)])
        expected = service.answer("g", _query()).answers
        barrier = threading.Barrier(8)
        results, errors = [], []

        def reader():
            try:
                barrier.wait(timeout=10)
                results.append(service.answer("g", _query()).answers)
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 8
        assert all(result == expected for result in results)


class TestQueryIngestRaces:
    def test_concurrent_query_and_ingest_see_whole_batches(self, catalog):
        """Readers racing a writer must observe a prefix of the ingest
        batches — never a torn batch — and the final state must be exact."""
        service = QueryService(catalog, kind="weak")
        query = _query()
        batches = [[_triple(base * 8 + i) for i in range(8)] for base in range(6)]
        valid_sizes = {0, 8, 16, 24, 32, 40, 48}
        barrier = threading.Barrier(5)
        observed, errors = [], []

        def writer():
            try:
                barrier.wait(timeout=10)
                for batch in batches:
                    catalog.add_triples("g", batch)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                barrier.wait(timeout=10)
                for _ in range(12):
                    observed.append(len(service.answer("g", query).answers))
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert observed and all(size in valid_sizes for size in observed)
        assert len(service.answer("g", query).answers) == 48

    def test_statistics_stay_fresh_and_exact_after_races(self, catalog):
        """After concurrent ingest the profile equals a from-scratch scan
        (the exactness contract of incremental maintenance)."""
        service = QueryService(catalog, kind="weak")
        barrier = threading.Barrier(4)
        errors = []

        def writer(base):
            try:
                barrier.wait(timeout=10)
                for index in range(4):
                    catalog.add_triples("g", [_triple(base * 100 + index)])
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                barrier.wait(timeout=10)
                for _ in range(8):
                    service.answer("g", _query())
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(base,)) for base in (1, 2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        entry = catalog.entry("g")
        assert entry.statistics_index() == CardinalityStatistics.from_store(entry.store)

    def test_weak_summary_stays_correct_after_races(self, catalog):
        service = QueryService(catalog, kind="weak")
        barrier = threading.Barrier(3)
        errors = []

        def writer():
            try:
                barrier.wait(timeout=10)
                for index in range(12):
                    catalog.add_triples("g", [_triple(index)])
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            try:
                barrier.wait(timeout=10)
                for _ in range(8):
                    service.answer("g", _query())
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        entry = catalog.entry("g")
        assert graphs_isomorphic(
            entry.summary("weak").graph, summarize(entry.to_graph(), "weak").graph
        )


class TestExecutorLifecycle:
    def test_ingest_through_the_executor(self, catalog):
        service = QueryService(catalog, kind="weak")
        with QueryExecutor(service, max_workers=2) as executor:
            inserted = executor.ingest("g", [_triple(1), _triple(2)])
            assert inserted == 2
            answer = executor.answer("g", _query())
            assert len(answer.answers) == 2

    def test_invalid_worker_count_rejected(self, catalog):
        with pytest.raises(ValueError):
            QueryExecutor(QueryService(catalog), max_workers=0)
