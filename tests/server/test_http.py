"""Tests for the HTTP front end (JSON API over ThreadingHTTPServer)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.io.ntriples import serialize_ntriples
from repro.service.catalog import GraphCatalog
from repro.server.http import ServerApp, start_background


def _call(base, method, route, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + route,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if body is not None else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
            content_type = response.headers.get("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw)
            return response.status, raw.decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def served(fig2):
    catalog = GraphCatalog()
    catalog.register("fig2", graph=fig2)
    app = ServerApp(catalog, kind="weak", max_workers=2)
    server, _thread = start_background(app)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, catalog
    server.shutdown()
    server.server_close()
    app.close()
    catalog.close()


class TestBasics:
    def test_healthz(self, served):
        base, _catalog = served
        status, payload = _call(base, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["graphs"] == ["fig2"]

    def test_list_graphs(self, served, fig2):
        base, _catalog = served
        status, payload = _call(base, "GET", "/graphs")
        assert status == 200
        (entry,) = payload["graphs"]
        assert entry["name"] == "fig2"
        assert entry["store"]["total_rows"] == len(fig2)

    def test_unknown_route_404(self, served):
        base, _catalog = served
        status, payload = _call(base, "GET", "/nonsense")
        assert status == 404 and "error" in payload


class TestQuery:
    def test_select_answers(self, served):
        base, _catalog = served
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            {"query": "SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }"},
        )
        assert status == 200
        assert payload["answer_count"] == len(payload["answers"]) > 0
        assert payload["head"] == ["x"]
        assert not payload["pruned"]

    def test_ask_query(self, served):
        base, _catalog = served
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            {"query": "ASK WHERE { ?x <http://example.org/fig2/editor> ?y . }"},
        )
        assert status == 200
        assert payload["boolean"] is True
        assert payload["answer_count"] == 1  # the empty tuple

    def test_unsatisfiable_query_is_pruned(self, served):
        base, _catalog = served
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            # both properties exist but never meet on a node — the weak
            # summary rejects the join (a structural unsat, not a dict miss)
            {
                "query": "SELECT ?x WHERE { ?y <http://example.org/fig2/comment> ?x . "
                "?x <http://example.org/fig2/editor> ?z . }"
            },
        )
        assert status == 200
        assert payload["answers"] == [] and payload["pruned"]
        assert payload["pruned_by"] == "weak"

    def test_explain_carries_a_trace(self, served):
        base, _catalog = served
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            {
                "query": "SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }",
                "explain": True,
            },
        )
        assert status == 200
        assert payload["trace"]["strategy"] == "hash"

    def test_malformed_query_400(self, served):
        base, _catalog = served
        status, payload = _call(base, "POST", "/graphs/fig2/query", {"query": "HELLO"})
        assert status == 400 and "error" in payload

    def test_unknown_graph_404(self, served):
        base, _catalog = served
        status, payload = _call(
            base, "POST", "/graphs/missing/query", {"query": "ASK { ?s ?p ?o }"}
        )
        assert status == 404 and "error" in payload

    def test_bad_limit_400(self, served):
        base, _catalog = served
        for bad_limit in (-3, 0, True, "ten"):
            status, _payload = _call(
                base,
                "POST",
                "/graphs/fig2/query",
                {"query": "ASK { ?s ?p ?o }", "limit": bad_limit},
            )
            assert status == 400, bad_limit


class TestIngestAndMaintenance:
    def test_ingest_bumps_version_and_serves_new_data(self, served):
        base, catalog = served
        triples = "<http://example.org/new/a> <http://example.org/new/p> <http://example.org/new/b> .\n"
        status, payload = _call(base, "POST", "/graphs/fig2/triples", {"triples": triples})
        assert status == 200
        assert payload["inserted"] == 1 and payload["version"] == 1
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            {"query": "SELECT ?x WHERE { ?x <http://example.org/new/p> ?y . }"},
        )
        assert status == 200 and payload["answer_count"] == 1

    def test_reingest_is_idempotent(self, served):
        base, _catalog = served
        triples = "<http://example.org/new/a> <http://example.org/new/p> <http://example.org/new/b> .\n"
        _call(base, "POST", "/graphs/fig2/triples", {"triples": triples})
        status, payload = _call(base, "POST", "/graphs/fig2/triples", {"triples": triples})
        assert status == 200 and payload["inserted"] == 0

    def test_malformed_ntriples_400(self, served):
        base, _catalog = served
        status, payload = _call(
            base, "POST", "/graphs/fig2/triples", {"triples": "this is not rdf"}
        )
        assert status == 400 and "error" in payload

    def test_url_encoded_graph_names_round_trip(self, served):
        base, _catalog = served
        status, _payload = _call(base, "POST", "/graphs", {"name": "my graph"})
        assert status == 201
        status, payload = _call(
            base, "POST", "/graphs/my%20graph/query", {"query": "ASK { ?s ?p ?o }"}
        )
        assert status == 200 and payload["boolean"] is True
        status, _payload = _call(base, "GET", "/graphs/my%20graph/statistics")
        assert status == 200
        status, _payload = _call(base, "DELETE", "/graphs/my%20graph")
        assert status == 200

    def test_graph_names_with_slashes_rejected_at_registration(self, served):
        base, _catalog = served
        status, payload = _call(base, "POST", "/graphs", {"name": "a/b"})
        assert status == 400 and "error" in payload

    def test_delete_with_a_body_keeps_the_connection_usable(self, served):
        """A DELETE carrying a body (curl -d) must not desynchronize the
        keep-alive connection for the next request."""
        import http.client

        base, _catalog = served
        connection = http.client.HTTPConnection(base[len("http://") :], timeout=30)
        try:
            connection.request("DELETE", "/graphs/nope", body=b'{"why": "curl -d"}')
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # same connection: the body above must have been drained
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_persistence_failure_is_a_500(self, served, monkeypatch):
        from repro.errors import PersistenceError as PE

        base, catalog = served
        entry = catalog.entry("fig2")

        def failing_update(_entry, _rows):
            raise PE("disk full (simulated)")

        monkeypatch.setattr(entry, "_on_update", failing_update)
        status, payload = _call(
            base,
            "POST",
            "/graphs/fig2/triples",
            {"triples": "<http://p.example/a> <http://p.example/b> <http://p.example/c> .\n"},
        )
        assert status == 500 and "persistence" in payload["error"]

    def test_query_racing_a_drop_gets_a_404(self, served):
        """A query that raced drop() must see unknown-graph, not a
        closed-store 400."""
        from repro.errors import UnknownGraphError
        from repro.service.service import QueryService
        from repro.queries.parser import parse_query

        base, catalog = served
        entry = catalog.entry("fig2")
        service = QueryService(catalog, kind="weak")
        query = parse_query("ASK { ?s ?p ?o }")
        with entry.rwlock.write_locked():
            entry.close()  # what drop() does under the write lock
        with pytest.raises(UnknownGraphError):
            # the service still resolves the (stale) entry object — the
            # closed flag is what protects the race window
            service.answer("fig2", query)

    def test_statistics_racing_a_drop_gets_a_404(self, served):
        base, catalog = served
        entry = catalog.entry("fig2")
        with entry.rwlock.write_locked():
            entry.close()  # what drop() does under the write lock
        status, payload = _call(base, "GET", "/graphs/fig2/statistics")
        assert status == 404 and "dropped" in payload["error"]

    def test_chunked_bodies_are_refused_with_a_close(self, served):
        import http.client

        base, _catalog = served
        connection = http.client.HTTPConnection(base[len("http://") :], timeout=30)
        try:
            connection.putrequest("POST", "/graphs/fig2/query")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 501
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_oversized_body_closes_the_connection(self, served):
        import http.client

        base, _catalog = served
        connection = http.client.HTTPConnection(base[len("http://") :], timeout=30)
        try:
            connection.putrequest("POST", "/graphs/fig2/query")
            connection.putheader("Content-Length", str(200 * 1024 * 1024))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_malformed_content_length_is_a_client_error(self, served):
        import http.client

        base, _catalog = served
        host_port = base[len("http://") :]
        connection = http.client.HTTPConnection(host_port, timeout=30)
        try:
            connection.putrequest("POST", "/graphs/fig2/query")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_register_and_drop_over_http(self, served, fig2):
        base, _catalog = served
        body = {"name": "copy", "triples": serialize_ntriples(fig2)}
        status, payload = _call(base, "POST", "/graphs", body)
        assert status == 201 and payload["triples"] == len(fig2)
        status, payload = _call(base, "POST", "/graphs", body)
        assert status == 409
        status, payload = _call(base, "DELETE", "/graphs/copy")
        assert status == 200
        status, payload = _call(base, "GET", "/graphs")
        assert [g["name"] for g in payload["graphs"]] == ["fig2"]


class TestStatisticsAndSummaries:
    def test_statistics_endpoint(self, served, fig2):
        base, _catalog = served
        status, payload = _call(base, "GET", "/graphs/fig2/statistics")
        assert status == 200
        assert payload["store"]["total_rows"] == len(fig2)
        assert payload["cardinality"]["total_rows"] == len(fig2)
        assert payload["service"]["queries"] >= 0

    def test_summary_endpoint_json(self, served):
        base, _catalog = served
        status, payload = _call(base, "GET", "/graphs/fig2/summary/weak")
        assert status == 200
        assert payload["kind"] == "weak"
        assert payload["statistics"]["all_edge_count"] > 0

    def test_summary_endpoint_ntriples(self, served):
        base, catalog = served
        status, text = _call(base, "GET", "/graphs/fig2/summary/weak?format=ntriples")
        assert status == 200
        assert isinstance(text, str)
        assert text == serialize_ntriples(catalog.summary("fig2", "weak").graph)

    def test_unknown_summary_kind_400(self, served):
        base, _catalog = served
        status, payload = _call(base, "GET", "/graphs/fig2/summary/banana")
        assert status == 400 and "error" in payload


class TestPersistentRestart:
    def test_http_restart_cycle_preserves_answers(self, fig2, tmp_path):
        path = str(tmp_path / "catalog.db")
        query = {"query": "SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }"}

        catalog = GraphCatalog.open(path)
        catalog.register("fig2", graph=fig2)
        app = ServerApp(catalog, kind="weak")
        server, _thread = start_background(app)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        _status, before = _call(base, "POST", "/graphs/fig2/query", query)
        server.shutdown()
        server.server_close()
        app.close()
        catalog.close()

        catalog = GraphCatalog.open(path)
        app = ServerApp(catalog, kind="weak")
        server, _thread = start_background(app)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        _status, after = _call(base, "POST", "/graphs/fig2/query", query)
        entry = catalog.entry("fig2")
        server.shutdown()
        server.server_close()
        app.close()
        catalog.close()

        assert after["answers"] == before["answers"]
        assert not any(entry.build_counters.values())


class TestSaturationExposure:
    def test_statistics_report_saturation_maintenance(self, served):
        base, catalog = served
        status, payload = _call(base, "GET", "/graphs/fig2/statistics")
        assert status == 200
        assert payload["saturation"] is None  # G∞ never requested yet

        query = "SELECT ?s ?o WHERE { ?s <http://example.org/fig2/editor> ?o . }"
        status, answer = _call(
            base,
            "POST",
            "/graphs/fig2/query",
            {"query": query, "saturated": True, "explain": True},
        )
        assert status == 200
        assert answer["saturation"]["live"] is True
        assert answer["saturation"]["builds"] == 1

        status, payload = _call(base, "GET", "/graphs/fig2/statistics")
        assert status == 200
        saturation = payload["saturation"]
        assert saturation["live"] is True
        assert saturation["store_rows"] >= payload["store"]["total_rows"]

        # an ingest updates G∞ in place and the delta shows up
        status, _ = _call(
            base,
            "POST",
            "/graphs/fig2/triples",
            {"triples": "<http://x.example/a> <http://x.example/p> <http://x.example/b> .\n"},
        )
        assert status == 200
        status, payload = _call(base, "GET", "/graphs/fig2/statistics")
        assert payload["saturation"]["deltas"] == 1
        assert payload["saturation"]["last_delta_rows"] == 1
        assert payload["build_counters"]["saturation_builds"] == 1

    def test_unsaturated_answers_carry_no_saturation_block(self, served):
        base, _catalog = served
        query = "SELECT ?s ?o WHERE { ?s <http://example.org/fig2/editor> ?o . }"
        status, answer = _call(
            base, "POST", "/graphs/fig2/query", {"query": query, "explain": True}
        )
        assert status == 200
        assert "saturation" not in answer
