"""Durability tests: the persistent catalog must warm-start with zero rebuilds."""

import pytest

from repro.core.builders import summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.errors import CatalogError, DuplicateGraphError, PersistenceError
from repro.model.graph import RDFGraph
from repro.model.namespaces import EX, RDF_TYPE
from repro.model.terms import BlankNode, Literal, URI
from repro.model.triple import Triple
from repro.queries.parser import parse_query
from repro.server.persistence import PersistentCatalog
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.service.statistics import CardinalityStatistics
from repro.store.sqlite import SQLiteStore


def _catalog_path(tmp_path):
    return str(tmp_path / "catalog.db")


@pytest.fixture
def fig2_query():
    """Satisfiable on fig2: the editor property really occurs there."""
    return parse_query("SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }")


@pytest.fixture
def bsbm_query():
    """Satisfiable on the small BSBM graph (a real guarded evaluation)."""
    return parse_query("SELECT ?x WHERE { ?x <http://bsbm.example.org/reviewFor> ?y . }")


@pytest.fixture
def ingest_query():
    """Matches only the triples the ingest tests add."""
    return parse_query("SELECT ?x WHERE { ?x <http://example.org/p1> ?y . }")


def _zero_counters(entry):
    return {name: hits for name, hits in entry.build_counters.items() if hits}


class TestRoundTrip:
    def test_register_reopen_preserves_graph(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            original = catalog.entry("fig2").to_graph()
        with GraphCatalog.open(path) as reopened:
            assert reopened.names() == ["fig2"]
            restored = reopened.entry("fig2").to_graph()
            assert set(restored) == set(original)
            assert reopened.entry("fig2").version == 0

    def test_every_term_shape_round_trips(self, tmp_path):
        path = _catalog_path(tmp_path)
        graph = RDFGraph(
            [
                Triple(EX.s, EX.p, Literal("plain")),
                Triple(EX.s, EX.p, Literal("typed", datatype=URI("http://www.w3.org/2001/XMLSchema#string"))),
                Triple(EX.s, EX.p, Literal("tagged", language="en")),
                Triple(BlankNode("b0"), EX.p, EX.o),
                Triple(EX.s, RDF_TYPE, EX.C),
            ]
        )
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=graph)
        with GraphCatalog.open(path) as reopened:
            assert set(reopened.entry("g").to_graph()) == set(graph)

    def test_restored_dictionary_ids_match(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            entry = catalog.register("fig2", graph=fig2)
            original = {term.n3(): i for term, i in entry.store.dictionary.items()}
        with GraphCatalog.open(path) as reopened:
            restored = {
                term.n3(): i for term, i in reopened.entry("fig2").store.dictionary.items()
            }
            assert restored == original

    def test_reopen_into_sqlite_backend(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
        factory = lambda: SQLiteStore(str(tmp_path / "store.db"))
        with GraphCatalog.open(path, store_factory=factory) as reopened:
            entry = reopened.entry("fig2")
            assert isinstance(entry.store, SQLiteStore)
            assert set(entry.to_graph()) == set(fig2)


class TestWarmStart:
    def test_first_guarded_query_rebuilds_nothing(self, bsbm_small, tmp_path, bsbm_query):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=bsbm_small)
            service = QueryService(catalog, kind="weak")
            cold = service.answer("g", bsbm_query)
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            warm = QueryService(reopened, kind="weak").answer("g", bsbm_query)
            assert warm.answers == cold.answers
            assert _zero_counters(entry) == {}

    def test_checkpointed_summaries_are_not_rebuilt(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            catalog.entry("fig2").summary("strong")
            catalog.checkpoint()
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("fig2")
            restored = entry.summary("strong")
            assert entry.build_counters["summary_builds"] == 0
            assert graphs_isomorphic(restored.graph, summarize(fig2, "strong").graph)

    def test_restored_statistics_match_a_fresh_scan(self, bsbm_small, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=bsbm_small)
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            restored = entry.statistics_index()
            assert entry.build_counters["statistics_scans"] == 0
            assert restored == CardinalityStatistics.from_store(entry.store)

    def test_restored_weak_summary_matches_from_scratch(self, bsbm_small, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=bsbm_small)
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            warm = entry.summary("weak")
            assert entry.build_counters["weak_snapshots"] == 0
            assert graphs_isomorphic(warm.graph, summarize(bsbm_small, "weak").graph)


class TestKillAndReopen:
    """add_triples writes through — no checkpoint() call, no loss."""

    def test_ingest_survives_without_checkpoint(self, fig2, tmp_path, ingest_query):
        path = _catalog_path(tmp_path)
        fresh = Triple(EX.term("new-node"), EX.term("p1"), EX.term("new-target"))
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            catalog.add_triples("fig2", [fresh])
            live = QueryService(catalog).answer("fig2", ingest_query).answers
            # no checkpoint() — closing simulates the process dying after
            # the (atomic, write-through) ingest transaction
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("fig2")
            assert entry.version == 1
            assert fresh in set(entry.to_graph())
            warm = QueryService(reopened).answer("fig2", ingest_query).answers
            assert warm == live
            assert _zero_counters(entry) == {}

    def test_incremental_maintainer_state_continues(self, fig2, tmp_path):
        """Post-restart ingest keeps the weak summary identical to a from-
        scratch summarization of the accumulated graph."""
        path = _catalog_path(tmp_path)
        first = Triple(EX.term("a"), EX.term("p1"), EX.term("b"))
        second = Triple(EX.term("c"), EX.term("p1"), EX.term("d"))
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            catalog.add_triples("fig2", [first])
        with GraphCatalog.open(path) as reopened:
            reopened.add_triples("fig2", [second])
            accumulated = reopened.entry("fig2").to_graph()
            warm = reopened.summary("fig2", "weak")
            assert graphs_isomorphic(warm.graph, summarize(accumulated, "weak").graph)

    def test_restored_statistics_stay_exact_under_ingest(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
        with GraphCatalog.open(path) as reopened:
            reopened.add_triples(
                "fig2", [Triple(EX.term("x"), EX.term("p9"), EX.term("y"))]
            )
            entry = reopened.entry("fig2")
            assert entry.statistics_index() == CardinalityStatistics.from_store(entry.store)
            assert entry.build_counters["statistics_scans"] == 0


class TestWriteThroughFailure:
    def test_failed_write_through_propagates_and_heals(self, fig2, tmp_path, monkeypatch):
        """A lost checkpoint must surface to the caller, and the next
        successful update must rewrite the file completely — an incremental
        append after a lost batch would persist maintainer state referencing
        rows the file never received."""
        from repro.server.persistence import PersistentCatalog

        path = _catalog_path(tmp_path)
        first = Triple(EX.term("wt/a"), EX.term("p1"), EX.term("wt/b"))
        second = Triple(EX.term("wt/c"), EX.term("p1"), EX.term("wt/d"))
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)

            real_append = PersistentCatalog.append_update

            def failing_append(self, entry, rows):
                raise PersistenceError("disk full (simulated)")

            monkeypatch.setattr(PersistentCatalog, "append_update", failing_append)
            with pytest.raises(PersistenceError):
                catalog.add_triples("fig2", [first])
            # memory is ahead of the file and the entry knows it
            assert catalog.entry("fig2")._persist_dirty
            monkeypatch.setattr(PersistentCatalog, "append_update", real_append)

            # the next successful update heals via a full rewrite
            catalog.add_triples("fig2", [second])
            assert not catalog.entry("fig2")._persist_dirty
        with GraphCatalog.open(path) as reopened:
            restored = set(reopened.entry("fig2").to_graph())
            assert first in restored and second in restored


class TestDropRaces:
    def test_drop_racing_an_in_flight_ingest_does_not_resurrect(self, fig2, tmp_path):
        """drop() must wait for the in-flight ingest (write lock) before
        the durable delete, or the ingest's write-through re-inserts a
        corrupt skeleton of the dropped graph."""
        import threading

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
            entry = catalog.entry("g")
            in_update, release = threading.Event(), threading.Event()
            real_update = entry._on_update

            def slow_update(updated_entry, rows):
                in_update.set()
                assert release.wait(timeout=10)
                real_update(updated_entry, rows)

            entry._on_update = slow_update
            ingest = threading.Thread(
                target=lambda: catalog.add_triples(
                    "g", [Triple(EX.term("r/a"), EX.term("r/p"), EX.term("r/b"))]
                )
            )
            ingest.start()
            assert in_update.wait(timeout=10)  # ingest holds the write lock
            dropper = threading.Thread(target=lambda: catalog.drop("g"))
            dropper.start()
            release.set()  # let the ingest's checkpoint finish, then drop
            ingest.join(timeout=30)
            dropper.join(timeout=30)
            assert "g" not in catalog
        with GraphCatalog.open(path) as reopened:
            assert reopened.names() == []

    def test_ingest_queued_behind_a_drop_reports_unknown_graph(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
            stale = catalog.entry("g")
            catalog.drop("g")
            from repro.errors import UnknownGraphError

            with pytest.raises(UnknownGraphError):
                stale.add_triples([Triple(EX.term("q/a"), EX.term("q/p"), EX.term("q/b"))])
        with GraphCatalog.open(path) as reopened:
            assert reopened.names() == []

    def test_failed_persistent_register_closes_the_created_store(
        self, fig2, tmp_path, monkeypatch
    ):
        from repro.server.persistence import PersistentCatalog

        path = _catalog_path(tmp_path)
        created = []
        base_factory = lambda: SQLiteStore(str(tmp_path / f"reg-{len(created)}.db"))

        def tracking_factory():
            store = base_factory()
            created.append(store)
            return store

        with GraphCatalog.open(path, store_factory=tracking_factory) as catalog:
            monkeypatch.setattr(
                PersistentCatalog,
                "save_graph",
                lambda self, entry: (_ for _ in ()).throw(PersistenceError("disk full")),
            )
            with pytest.raises(PersistenceError):
                catalog.register("g", graph=fig2)
            assert "g" not in catalog
            assert len(created) == 1
            assert created[0]._connection is None  # the store was closed


class TestCatalogMaintenance:
    def test_drop_forgets_durably(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            catalog.drop("fig2")
        with GraphCatalog.open(path) as reopened:
            assert reopened.names() == []

    def test_duplicate_register_leaves_persisted_entry_intact(self, fig2, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("fig2", graph=fig2)
            with pytest.raises(DuplicateGraphError):
                catalog.register("fig2", graph=RDFGraph())
        with GraphCatalog.open(path) as reopened:
            assert set(reopened.entry("fig2").to_graph()) == set(fig2)

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path):
            pass
        import sqlite3

        connection = sqlite3.connect(path)
        connection.execute("UPDATE catalog_meta SET value = '999' WHERE key = 'schema_version'")
        connection.commit()
        connection.close()
        with pytest.raises(PersistenceError):
            GraphCatalog.open(path)

    def test_version_mismatch_refuses_before_touching_the_file(self, tmp_path):
        """A future-schema catalog must be rejected *untouched* — not first
        mutated with this build's tables and then declared unreadable."""
        import sqlite3

        path = str(tmp_path / "future.db")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE catalog_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        connection.execute("INSERT INTO catalog_meta VALUES ('schema_version', '999')")
        connection.commit()
        connection.close()
        with pytest.raises(PersistenceError, match="schema version 999"):
            PersistentCatalog(path)
        connection = sqlite3.connect(path)
        tables = {
            row[0]
            for row in connection.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        connection.close()
        assert tables == {"catalog_meta"}  # no v1 tables were created

    def test_persistence_error_is_a_catalog_error(self):
        assert issubclass(PersistenceError, CatalogError)

    def test_non_catalog_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-db.bin"
        path.write_bytes(b"definitely not sqlite")
        with pytest.raises(PersistenceError):
            PersistentCatalog(str(path))

    def test_foreign_sqlite_database_is_rejected_unmodified(self, tmp_path):
        """Opening e.g. a per-graph store file must fail loudly, not adopt
        and mutate it into an empty catalog."""
        import sqlite3

        path = str(tmp_path / "store.db")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE data_triples (s INTEGER, p INTEGER, o INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(PersistenceError, match="not a catalog file"):
            PersistentCatalog(path)
        connection = sqlite3.connect(path)
        tables = {
            row[0]
            for row in connection.execute("SELECT name FROM sqlite_master WHERE type='table'")
        }
        connection.close()
        assert tables == {"data_triples"}  # the file was left untouched

    def test_concurrent_register_of_the_same_name_conflicts(self, fig2, tmp_path):
        """The name is reserved before the heavy build runs outside the
        catalog lock — a racing duplicate must still be rejected."""
        import threading

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            outcomes = []
            barrier = threading.Barrier(2, timeout=10)

            def register():
                try:
                    barrier.wait()
                    catalog.register("g", graph=fig2)
                    outcomes.append("ok")
                except DuplicateGraphError:
                    outcomes.append("duplicate")

            threads = [threading.Thread(target=register) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert sorted(outcomes) == ["duplicate", "ok"]
            assert catalog.names() == ["g"]

    def test_in_memory_catalog_checkpoint_is_a_noop(self, fig2):
        with GraphCatalog() as catalog:
            catalog.register("fig2", graph=fig2)
            assert not catalog.persistent
            catalog.checkpoint()  # must not raise


class TestColumnBlobWarmStart:
    """Columnar stores checkpoint as packed blobs and reopen without any
    per-row work: no index builds, and byte-identical columns."""

    def test_reopen_is_byte_identical_and_builds_nothing(self, bsbm_small, tmp_path):
        from repro.model.triple import TripleKind

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            entry = catalog.register("g", graph=bsbm_small)
            original = {kind: entry.store.column_bytes(kind) for kind in TripleKind}
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            assert entry.store.index_build_count() == 0
            restored = {kind: entry.store.column_bytes(kind) for kind in TripleKind}
            assert restored == original
            assert entry.store.index_build_count() == 0  # blobs never index

    def test_checkpoint_writes_blobs_not_rows(self, fig2, tmp_path):
        import sqlite3

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
        connection = sqlite3.connect(path)
        blob_tables = connection.execute(
            "SELECT COUNT(*) FROM graph_columns WHERE graph = 'g'"
        ).fetchone()[0]
        row_count = connection.execute(
            "SELECT COUNT(*) FROM graph_triples WHERE graph = 'g'"
        ).fetchone()[0]
        connection.close()
        assert blob_tables > 0
        assert row_count == 0

    def test_appended_tail_rows_fold_in_on_reopen(self, fig2, tmp_path, ingest_query):
        # add_triples appends plain rows behind the blob snapshot; a warm
        # start must serve the union, and the next checkpoint re-packs it
        path = _catalog_path(tmp_path)
        fresh = Triple(EX.term("blob/a"), EX.term("p1"), EX.term("blob/b"))
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
            catalog.add_triples("g", [fresh])
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            assert fresh in set(entry.to_graph())
            answers = QueryService(reopened).answer("g", ingest_query).answers
            assert (EX.term("blob/a"),) in answers
            reopened.checkpoint()
        import sqlite3

        connection = sqlite3.connect(path)
        remaining = connection.execute(
            "SELECT COUNT(*) FROM graph_triples WHERE graph = 'g'"
        ).fetchone()[0]
        connection.close()
        assert remaining == 0  # the tail was folded back into the blobs

    def test_blob_snapshot_reopens_into_sqlite_backend(self, fig2, tmp_path):
        # a snapshot written by the columnar store must stay readable by a
        # backend without blob adoption (the rows are unpacked instead)
        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
        factory = lambda: SQLiteStore(str(tmp_path / "unpacked.db"))
        with GraphCatalog.open(path, store_factory=factory) as reopened:
            entry = reopened.entry("g")
            assert isinstance(entry.store, SQLiteStore)
            assert set(entry.to_graph()) == set(fig2)


class TestSaturationWarmStart:
    """Warm restarts must keep G∞ — zero rule application on reopen."""

    def _saturated_query(self):
        return parse_query(
            "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
            "<http://example.org/Publication> . }"
        )

    def test_checkpointed_saturation_is_not_rebuilt(self, book_graph, tmp_path):
        from repro.schema.saturation import saturate

        path = _catalog_path(tmp_path)
        query = self._saturated_query()
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=book_graph)
            service = QueryService(catalog)
            cold = service.answer("g", query, saturated=True)
            assert catalog.entry("g").build_counters["saturation_builds"] == 1
            catalog.checkpoint()
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            warm = QueryService(reopened).answer("g", query, saturated=True)
            assert warm.answers == cold.answers
            assert entry.build_counters["saturation_builds"] == 0
            assert entry.build_counters["saturated_statistics_scans"] == 0
            maintained = set(entry.saturated_evaluator().store.to_graph())
            assert maintained == set(saturate(entry.to_graph()))

    def test_write_through_persists_saturation_without_checkpoint(
        self, book_graph, tmp_path
    ):
        # the saturated state is seeded *between* checkpoints, then an
        # ingest write-through must persist the full derived log (the
        # durable log lags the live one and is rewritten wholesale)
        from repro.model.namespaces import EX
        from repro.model.triple import Triple
        from repro.schema.saturation import saturate

        path = _catalog_path(tmp_path)
        query = self._saturated_query()
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=book_graph)
            QueryService(catalog).answer("g", query, saturated=True)
            catalog.add_triples(
                "g", [Triple(EX.doiX, EX.writtenBy, EX.someoneelse)]
            )  # write-through appends rows + replaces artifacts
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            QueryService(reopened).answer("g", query, saturated=True)
            assert entry.build_counters["saturation_builds"] == 0
            maintained = set(entry.saturated_evaluator().store.to_graph())
            assert maintained == set(saturate(entry.to_graph()))

    def test_ingest_after_warm_start_keeps_maintaining(self, book_graph, tmp_path):
        from repro.model.namespaces import EX, RDF_TYPE
        from repro.model.triple import Triple
        from repro.schema.saturation import saturate

        path = _catalog_path(tmp_path)
        query = self._saturated_query()
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=book_graph)
            QueryService(catalog).answer("g", query, saturated=True)
            catalog.checkpoint()
        with GraphCatalog.open(path) as reopened:
            entry = reopened.entry("g")
            # ingest BEFORE any saturated access: the pending snapshot is
            # materialized rule-free, then the delta applies semi-naively
            new = Triple(EX.doiY, EX.writtenBy, EX.other)
            reopened.add_triples("g", [new])
            assert entry.build_counters["saturation_builds"] == 0
            answer = QueryService(reopened).answer("g", query, saturated=True)
            assert (EX.doiY,) in answer.answers or Triple(
                EX.doiY, RDF_TYPE, EX.Publication
            ) in saturate(entry.to_graph())
            maintained = set(entry.saturated_evaluator().store.to_graph())
            assert maintained == set(saturate(entry.to_graph()))
        # and it survived durably: one more cycle, still zero rebuilds
        with GraphCatalog.open(path) as again:
            entry = again.entry("g")
            maintained = set(entry.saturated_evaluator().store.to_graph())
            assert entry.build_counters["saturation_builds"] == 0
            assert maintained == set(saturate(entry.to_graph()))

    def test_unsaturated_graph_carries_no_saturation_artifacts(self, fig2, tmp_path):
        import sqlite3

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=fig2)
            catalog.checkpoint()
        connection = sqlite3.connect(path)
        artifact_names = {
            row[0] for row in connection.execute("SELECT name FROM artifacts")
        }
        saturation_rows = connection.execute(
            "SELECT COUNT(*) FROM saturation_rows"
        ).fetchone()[0]
        connection.close()
        assert "saturation" not in artifact_names
        assert saturation_rows == 0

    def test_drop_forgets_saturation_rows(self, book_graph, tmp_path):
        import sqlite3

        path = _catalog_path(tmp_path)
        with GraphCatalog.open(path) as catalog:
            catalog.register("g", graph=book_graph)
            catalog.entry("g").saturated_evaluator()
            catalog.checkpoint()
            catalog.drop("g")
        connection = sqlite3.connect(path)
        remaining = connection.execute("SELECT COUNT(*) FROM saturation_rows").fetchone()[0]
        connection.close()
        assert remaining == 0
