"""End-to-end test of ``repro serve``: real subprocess, real HTTP, warm restart."""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.io.ntriples import dump_ntriples


REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_server(args):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.abspath(REPO_SRC) + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )


def _wait_for_port(process, timeout=30):
    """Parse the announced URL from the serve banner."""
    deadline = time.monotonic() + timeout
    banner = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        banner += line
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError(f"server never announced a port; output so far:\n{banner}")


def _post_query(port, query, timeout=30):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/graphs/g/query",
        data=json.dumps({"query": query}).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _stop(process):
    process.send_signal(signal.SIGINT)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)
        raise


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_serve_round_trip_with_warm_restart(tmp_path, fig2, backend):
    data_file = tmp_path / "fig2.nt"
    dump_ntriples(fig2, str(data_file))
    catalog_path = tmp_path / "catalog.db"
    query = "SELECT ?x WHERE { ?x <http://example.org/fig2/editor> ?y . }"
    base_args = [
        "--catalog",
        str(catalog_path),
        "--port",
        "0",
        "--threads",
        "2",
        "--backend",
        backend,
    ]

    process = _spawn_server([*base_args, "--load", f"g={data_file}"])
    try:
        port = _wait_for_port(process)
        cold = _post_query(port, query)
        assert cold["answer_count"] > 0
    finally:
        _stop(process)
    assert process.returncode == 0

    # warm restart: no --load, everything must come from the catalog file
    process = _spawn_server(base_args)
    try:
        port = _wait_for_port(process)
        warm = _post_query(port, query)
        assert warm["answers"] == cold["answers"]
    finally:
        _stop(process)
    assert process.returncode == 0


def test_serve_cluster_round_trip_with_sigterm_drain(tmp_path, fig2):
    """``--workers 2``: queries scatter across worker processes, and a
    SIGTERM drains the whole tier (HTTP, executor, cluster workers) to a
    clean exit 0."""
    data_file = tmp_path / "fig2.nt"
    dump_ntriples(fig2, str(data_file))
    process = _spawn_server(
        [
            "--port",
            "0",
            "--threads",
            "2",
            "--workers",
            "2",
            "--load",
            f"g={data_file}",
        ]
    )
    try:
        port = _wait_for_port(process)
        answer = _post_query(
            port, "SELECT ?x ?y WHERE { ?x <http://example.org/fig2/editor> ?y . }"
        )
        assert answer["answer_count"] > 0
        assert answer["cluster"]["mode"] in ("scatter", "full")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/cluster", timeout=30
        ) as response:
            status = json.loads(response.read())
        assert status["worker_count"] == 2
        assert all(worker["alive"] for worker in status["workers"])
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
            raise
    assert process.returncode == 0
